package ivm_test

import (
	"strings"
	"testing"

	"pgiv/internal/graph"
	"pgiv/internal/ivm"
	"pgiv/internal/value"
)

// str renders view rows compactly for assertions.
func renderRows(rows []value.Row) string {
	var parts []string
	for _, r := range rows {
		parts = append(parts, value.RowString(r))
	}
	return strings.Join(parts, " ")
}

func s(v string) value.Value { return value.NewString(v) }

// TestPaperRunningExample reproduces the paper's Section 2 example
// end-to-end (EXP-A): the query
//
//	MATCH t = (p:Post)-[:REPLY*]->(c:Comm) WHERE p.lang = c.lang RETURN p, t
//
// over the graph Post(1) -REPLY-> Comm(2) -REPLY-> Comm(3), all in
// language "en", yields p=1 with threads [1,2] and [1,2,3] — and the view
// stays correct under fine-grained updates.
func TestPaperRunningExample(t *testing.T) {
	g := graph.New()
	p1 := g.AddVertex([]string{"Post"}, map[string]value.Value{"lang": s("en")})
	c2 := g.AddVertex([]string{"Comm"}, map[string]value.Value{"lang": s("en")})
	c3 := g.AddVertex([]string{"Comm"}, map[string]value.Value{"lang": s("en")})
	e12, err := g.AddEdge(p1, c2, "REPLY", nil)
	if err != nil {
		t.Fatal(err)
	}
	e23, err := g.AddEdge(c2, c3, "REPLY", nil)
	if err != nil {
		t.Fatal(err)
	}

	engine := ivm.NewEngine(g)
	view, err := engine.RegisterView("threads",
		"MATCH t = (p:Post)-[:REPLY*]->(c:Comm) WHERE p.lang = c.lang RETURN p, t")
	if err != nil {
		t.Fatal(err)
	}

	want := func(expect string) {
		t.Helper()
		got := renderRows(view.Rows())
		if got != expect {
			t.Fatalf("view rows:\n got  %s\n want %s", got, expect)
		}
	}

	// The paper's result table: p=1, t=[1,2] and t=[1,2,3].
	want("((#1), <(#1)-[#1]->(#2)>) ((#1), <(#1)-[#1]->(#2)-[#2]->(#3)>)")

	// FGN: flipping comment 3 to German retracts only the longer thread.
	if err := g.SetVertexProperty(c3, "lang", s("de")); err != nil {
		t.Fatal(err)
	}
	want("((#1), <(#1)-[#1]->(#2)>)")

	// Flipping the post's language to German now matches only comment 3.
	if err := g.SetVertexProperty(p1, "lang", s("de")); err != nil {
		t.Fatal(err)
	}
	want("((#1), <(#1)-[#1]->(#2)-[#2]->(#3)>)")

	// Restore and extend the thread with a new reply 3 -> 4.
	if err := g.SetVertexProperty(p1, "lang", s("en")); err != nil {
		t.Fatal(err)
	}
	if err := g.SetVertexProperty(c3, "lang", s("en")); err != nil {
		t.Fatal(err)
	}
	c4 := g.AddVertex([]string{"Comm"}, map[string]value.Value{"lang": s("en")})
	if _, err := g.AddEdge(c3, c4, "REPLY", nil); err != nil {
		t.Fatal(err)
	}
	want("((#1), <(#1)-[#1]->(#2)>) ((#1), <(#1)-[#1]->(#2)-[#2]->(#3)>) ((#1), <(#1)-[#1]->(#2)-[#2]->(#3)-[#3]->(#4)>)")

	// Atomic path maintenance (ORD): deleting the middle edge removes
	// every thread through it as a unit.
	if err := g.RemoveEdge(e23); err != nil {
		t.Fatal(err)
	}
	want("((#1), <(#1)-[#1]->(#2)>)")

	// Deleting the first edge empties the view.
	if err := g.RemoveEdge(e12); err != nil {
		t.Fatal(err)
	}
	want("")

	_ = e12
}
