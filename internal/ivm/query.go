package ivm

import (
	"runtime"
	"sync/atomic"

	"pgiv/internal/fra"
	"pgiv/internal/rete"
	"pgiv/internal/rewrite"
	"pgiv/internal/snapshot"
	"pgiv/internal/value"
)

// Stats are the engine's cumulative ad-hoc query counters: how reads
// through Query/QueryParams were answered.
type Stats struct {
	// RewriteExact counts queries answered entirely from one memo's
	// published rows (no residual operators).
	RewriteExact uint64
	// RewriteResidual counts queries answered by a residual plan over a
	// memo's rows.
	RewriteResidual uint64
	// RewriteResidualOps is the total residual operator count across all
	// residual-hit queries.
	RewriteResidualOps uint64
	// RewriteMiss counts queries no live memo covered — evaluated from
	// scratch against a snapshot.
	RewriteMiss uint64
	// RewriteFallback counts covered queries that still fell back to a
	// from-scratch evaluation because the memo's publish epoch never
	// aligned with a pinnable snapshot (a commit permanently in flight —
	// effectively unreachable outside shutdown races).
	RewriteFallback uint64
}

// queryState carries the rewrite-serving machinery; embedded in Engine.
type queryState struct {
	rewriteOn atomic.Bool

	stExact    atomic.Uint64
	stResidual atomic.Uint64
	stResidOps atomic.Uint64
	stMiss     atomic.Uint64
	stFallback atomic.Uint64

	// rewriteHook, when non-nil, runs between memo selection and residual
	// evaluation on every rewrite-served read (test seam for the
	// drop-during-read race).
	rewriteHook func()
}

// Stats returns a copy of the cumulative query counters.
func (e *Engine) Stats() Stats {
	return Stats{
		RewriteExact:       e.qs.stExact.Load(),
		RewriteResidual:    e.qs.stResidual.Load(),
		RewriteResidualOps: e.qs.stResidOps.Load(),
		RewriteMiss:        e.qs.stMiss.Load(),
		RewriteFallback:    e.qs.stFallback.Load(),
	}
}

// EnableRewrite turns on answering ad-hoc queries from materialized view
// state: every live production starts publishing per-epoch rows (and
// every future registration publishes from birth), making them
// enumerable as rewrite candidates. Idempotent; Query/QueryParams enable
// it lazily on first use. Must not run concurrently with a graph
// mutation (like every Engine method); holding the engine lock excludes
// in-flight propagation.
func (e *Engine) EnableRewrite() {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.qs.rewriteOn.Load() {
		return
	}
	epoch := e.g.Epoch()
	for _, v := range e.viewList {
		v.network.Prod.Watch(epoch)
	}
	e.qs.rewriteOn.Store(true)
}

// rewriteCandidates snapshots the live memoized productions as rewrite
// candidates. Row access goes through Production.Published(), the
// wait-free epoch-stamped path, so candidate evaluation never touches
// engine or graph locks.
func (e *Engine) rewriteCandidates() []rewrite.Candidate {
	e.mu.RLock()
	defer e.mu.RUnlock()
	names := make(map[*rete.Production]string, len(e.viewList))
	for _, v := range e.viewList {
		if _, ok := names[v.network.Prod]; !ok {
			names[v.network.Prod] = v.name
		}
	}
	cands := e.reg.Candidates()
	out := make([]rewrite.Candidate, 0, len(cands))
	for _, c := range cands {
		name := names[c.Prod]
		if name == "" {
			name = "memo"
		}
		prod := c.Prod
		out = append(out, rewrite.Candidate{
			Name: name, Plan: c.Plan, Params: c.Params,
			Rows: func() ([]value.Row, uint64, bool) {
				pub := prod.Published()
				if pub == nil {
					return nil, 0, false
				}
				return pub.Rows, pub.Epoch, true
			},
		})
	}
	return out
}

// Query answers an ad-hoc read, preferring materialized state: when a
// registered view's memo covers the query (exactly, or up to a residual
// filter/projection/dedup/top slice), the answer is computed from the
// memo's published rows at a pinned matching epoch instead of a full
// snapshot evaluation. Returns the result and the epoch it reflects.
func (e *Engine) Query(query string) (*snapshot.Result, uint64, error) {
	return e.QueryParams(query, nil)
}

// QueryParams is Query with parameters.
func (e *Engine) QueryParams(query string, params map[string]value.Value) (*snapshot.Result, uint64, error) {
	plan, err := fra.CompileString(query)
	if err != nil {
		return nil, 0, err
	}
	if !e.qs.rewriteOn.Load() {
		e.EnableRewrite()
	}
	snap := e.g.Snapshot()
	defer func() { snap.Release() }()

	p := rewrite.Match(plan, params, e.rewriteCandidates())
	if p == nil {
		e.qs.stMiss.Add(1)
		res, err := snapshot.Eval(snap, plan, params)
		return res, snap.Epoch(), err
	}
	// The memo publishes at each commit's epoch after propagation; a
	// pinned snapshot may transiently lead (propagation in flight) or
	// trail (a commit landed between pin and publish read) the memo.
	// Align the two: re-pin when the memo is ahead, yield when behind.
	for attempt := 0; attempt < 256; attempt++ {
		if hook := e.qs.rewriteHook; hook != nil {
			hook()
		}
		rows, pubEpoch, ok := p.Cand.Rows()
		if !ok {
			break
		}
		snapEpoch := snap.Epoch()
		if pubEpoch == snapEpoch {
			res, err := p.Eval(snap, rows, params)
			if err != nil {
				// A residual that matched structurally but fails to
				// compile is a planner bug; stay correct via fallback.
				break
			}
			if p.Exact {
				e.qs.stExact.Add(1)
			} else {
				e.qs.stResidual.Add(1)
				e.qs.stResidOps.Add(uint64(p.Ops))
			}
			return res, snapEpoch, nil
		}
		if pubEpoch > snapEpoch {
			snap.Release()
			snap = e.g.Snapshot()
		} else {
			runtime.Gosched()
		}
	}
	e.qs.stFallback.Add(1)
	res, err := snapshot.Eval(snap, plan, params)
	return res, snap.Epoch(), err
}

// ExplainRewrite reports how an ad-hoc query would be answered right
// now: the chosen memo and the residual plan over it, or a miss.
func (e *Engine) ExplainRewrite(query string, params map[string]value.Value) (string, error) {
	plan, err := fra.CompileString(query)
	if err != nil {
		return "", err
	}
	if !e.qs.rewriteOn.Load() {
		e.EnableRewrite()
	}
	p := rewrite.Match(plan, params, e.rewriteCandidates())
	if p == nil {
		return "miss: no covering memo (full snapshot evaluation)\n", nil
	}
	return p.Format(), nil
}
