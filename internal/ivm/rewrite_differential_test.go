package ivm_test

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"pgiv/internal/graph"
	"pgiv/internal/ivm"
	"pgiv/internal/snapshot"
	"pgiv/internal/value"
)

// rewriteViews are the templates registered as maintained views for the
// rewrite oracle; the ad-hoc battery below is built as exact copies,
// subsets and supersets of these.
var rewriteViews = []string{
	"MATCH (a:Person)-[:KNOWS]->(b:Person) RETURN a, b",
	"MATCH (p:Post) WHERE p.score > 1 RETURN p, p.score, p.lang",
	"MATCH (a:Person) RETURN a.name, a.score ORDER BY a.score DESC, a.name ASC LIMIT 8",
	"MATCH (a:Person) RETURN DISTINCT a.city",
	"MATCH (p:Post) RETURN p.lang, count(*) AS n",
	"MATCH (p:Post)-[:REPLY*]->(c:Comm) RETURN p, c",
}

// adhocBattery is the ad-hoc query panel: every query is answered twice
// per commit — through the rewrite planner and from scratch — and the
// answers must be byte-identical. The panel deliberately spans all three
// planner outcomes: exact hits, residual (near) hits, and misses.
var adhocBattery = []struct {
	q      string
	params map[string]value.Value
}{
	// exact hits
	{"MATCH (a:Person)-[:KNOWS]->(b:Person) RETURN a, b", nil},
	{"MATCH (a:Person) RETURN DISTINCT a.city", nil},
	{"MATCH (p:Post)-[:REPLY*]->(c:Comm) RETURN p, c", nil},
	// residual hits: extra render-equal conjunct, range widening (with and
	// without a parameter), column subset, window containment, a Top over
	// an unordered memo, and an aggregate memo under an ad-hoc window
	{"MATCH (p:Post) WHERE p.score > 1 AND p.lang = 'en' RETURN p, p.score, p.lang", nil},
	{"MATCH (p:Post) WHERE p.score > 2 RETURN p.score, p.lang", nil},
	{"MATCH (p:Post) WHERE p.score > $t RETURN p, p.score, p.lang",
		map[string]value.Value{"t": value.NewInt(3)}},
	{"MATCH (a:Person) RETURN a.name, a.score ORDER BY a.score DESC, a.name ASC SKIP 2 LIMIT 4", nil},
	{"MATCH (a:Person)-[:KNOWS]->(b:Person) RETURN a, b LIMIT 3", nil},
	{"MATCH (p:Post) RETURN p.lang, count(*) AS n ORDER BY n DESC, p.lang ASC LIMIT 1", nil},
	// misses: a superset (wider range than any memo), an uncovered label,
	// and an uncovered edge pattern
	{"MATCH (p:Post) WHERE p.score > 0 RETURN p, p.score, p.lang", nil},
	{"MATCH (c:Comm) RETURN c", nil},
	{"MATCH (a:Person)-[:LIKES]->(p:Post) RETURN a, p", nil},
}

// checkAdhoc answers every battery query via the rewrite path and via a
// from-scratch snapshot evaluation and requires identical results: row
// for row in rank order for window queries, as sorted bags otherwise.
func checkAdhoc(t *testing.T, g *graph.Graph, engine *ivm.Engine, context string) {
	t.Helper()
	for _, a := range adhocBattery {
		got, _, err := engine.QueryParams(a.q, a.params)
		if err != nil {
			t.Fatalf("%s: rewrite query %q: %v", context, a.q, err)
		}
		want, err := snapshot.Query(g, a.q, a.params)
		if err != nil {
			t.Fatalf("%s: snapshot %q: %v", context, a.q, err)
		}
		ordered := strings.Contains(a.q, "ORDER BY") || strings.Contains(a.q, "LIMIT")
		gotRows, wantRows := got.Rows, want.Rows
		if !ordered {
			gotRows = (&snapshot.Result{Rows: gotRows}).Sorted()
			wantRows = want.Sorted()
		}
		if len(gotRows) != len(wantRows) {
			t.Fatalf("%s: query %q:\n got  (%d rows) %s\n want (%d rows) %s",
				context, a.q, len(gotRows), renderRows(gotRows), len(wantRows), renderRows(wantRows))
		}
		for i := range gotRows {
			if value.CompareRows(gotRows[i], wantRows[i]) != 0 {
				t.Fatalf("%s: query %q row %d:\n got  %s\n want %s\nfull got:  %s\nfull want: %s",
					context, a.q, i, value.RowString(gotRows[i]), value.RowString(wantRows[i]),
					renderRows(gotRows), renderRows(wantRows))
			}
		}
	}
}

// TestDifferentialRewriteOracle is the rewrite counterpart of
// TestDifferentialFuzzModes: the same seeded mutation stream runs in all
// six engine configurations, and after every commit the full ad-hoc
// battery is answered twice — once through the subsumption planner over
// the views' memoized rows, once from scratch against the snapshot — and
// the two answers must be byte-identical. At the end each configuration
// must have exercised every planner outcome (exact, residual, miss) and
// never fallen back, since publication is synchronous with the commit.
func TestDifferentialRewriteOracle(t *testing.T) {
	const seed = 20260729
	steps := 1000
	if testing.Short() {
		steps = 250
	}
	const batchSize = 20
	const cypherFrac = 0.4
	modes := []struct {
		name    string
		opts    ivm.Options
		batched bool
	}{
		{"per-op/shared", ivm.Options{NumWorkers: 1}, false},
		{"batched/shared", ivm.Options{NumWorkers: 1}, true},
		{"parallel/shared", ivm.Options{NumWorkers: 4}, false},
		{"per-op/private", ivm.Options{NoSharing: true, NumWorkers: 1}, false},
		{"batched/private", ivm.Options{NoSharing: true, NumWorkers: 1}, true},
		{"parallel/private", ivm.Options{NoSharing: true, NumWorkers: 4}, false},
	}
	for _, mode := range modes {
		mode := mode
		t.Run(mode.name, func(t *testing.T) {
			g := graph.New()
			engine := ivm.NewEngine(g, mode.opts)
			defer engine.Close()
			m := &mutator{g: g, mut: g, r: rand.New(rand.NewSource(seed)), capV: 40, capE: 80, cypherFrac: cypherFrac}

			register := func(from, stride int) {
				for i := from; i < len(rewriteViews); i += stride {
					if _, err := engine.RegisterView(fmt.Sprintf("r%02d", i), rewriteViews[i]); err != nil {
						t.Fatalf("register %q: %v", rewriteViews[i], err)
					}
				}
			}
			register(0, 2)

			applied := 0
			commit := 0
			runCommit := func() {
				if mode.batched {
					err := g.Batch(func(tx *graph.Tx) error {
						m.mut = tx
						for i := 0; i < batchSize && applied < steps; i++ {
							m.step(t)
							applied++
						}
						m.mut = g
						return nil
					})
					if err != nil {
						t.Fatalf("batch: %v", err)
					}
				} else {
					m.step(t)
					applied++
				}
				commit++
			}

			for applied < steps/5 {
				runCommit()
			}
			checkAdhoc(t, g, engine, fmt.Sprintf("%s after initial load", mode.name))
			register(1, 2) // late registration: memos seeded by replay must serve reads too
			checkAdhoc(t, g, engine, fmt.Sprintf("%s after late registration", mode.name))

			for applied < steps {
				runCommit()
				checkAdhoc(t, g, engine, fmt.Sprintf("%s commit %d (%d mutations)", mode.name, commit, applied))
			}

			st := engine.Stats()
			if st.RewriteExact == 0 || st.RewriteResidual == 0 || st.RewriteMiss == 0 {
				t.Fatalf("%s: battery did not exercise every planner outcome: %+v", mode.name, st)
			}
			if st.RewriteFallback != 0 {
				t.Fatalf("%s: unexpected rewrite fallbacks: %+v", mode.name, st)
			}
		})
	}
}
