package ivm_test

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"pgiv/internal/graph"
	"pgiv/internal/ivm"
	"pgiv/internal/rete"
	"pgiv/internal/value"
)

// TestOrderedTieDeterminism is the regression test for deterministic
// tie-breaking: a window whose boundary falls inside a run of equal
// sort keys must emit the identical rows, in the identical order, in
// every engine configuration (per-op, batched and parallel commits ×
// sharing on/off) — and match the snapshot oracle exactly. The stream
// keeps every vertex on one of two scores, so the LIMIT boundary always
// cuts through ties and only the canonical row-key order decides
// membership.
func TestOrderedTieDeterminism(t *testing.T) {
	const seed = 20260730
	queries := map[string]string{
		"top":    "MATCH (a:P) RETURN a, a.score ORDER BY a.score DESC LIMIT 5",
		"window": "MATCH (a:P) RETURN a, a.score ORDER BY a.score ASC SKIP 2 LIMIT 4",
		"suffix": "MATCH (a:P) RETURN a, a.score ORDER BY a.score DESC SKIP 3",
	}
	modes := []struct {
		name    string
		opts    ivm.Options
		batched bool
	}{
		{"per-op/shared", ivm.Options{NumWorkers: 1}, false},
		{"batched/shared", ivm.Options{NumWorkers: 1}, true},
		{"parallel/shared", ivm.Options{NumWorkers: 4}, false},
		{"per-op/private", ivm.Options{NoSharing: true, NumWorkers: 1}, false},
		{"batched/private", ivm.Options{NoSharing: true, NumWorkers: 1}, true},
		{"parallel/private", ivm.Options{NoSharing: true, NumWorkers: 4}, false},
	}

	render := func(rows []value.Row) string {
		var sb strings.Builder
		for _, r := range rows {
			sb.WriteString(value.RowString(r))
			sb.WriteByte('\n')
		}
		return sb.String()
	}

	// transcript runs the deterministic stream in one mode and records
	// every view's rendered window after every commit.
	transcript := func(mode ivm.Options, batched bool) string {
		g := graph.New()
		engine := ivm.NewEngine(g, mode)
		defer engine.Close()
		views := make(map[string]*ivm.View)
		for name, q := range queries {
			v, err := engine.RegisterView(name, q)
			if err != nil {
				t.Fatalf("register %q: %v", q, err)
			}
			views[name] = v
		}
		r := rand.New(rand.NewSource(seed))
		var ids []graph.ID
		var sb strings.Builder
		step := func(mut graph.Mutator) {
			switch {
			case len(ids) < 12 || r.Intn(4) == 0:
				ids = append(ids, mut.AddVertex([]string{"P"}, map[string]value.Value{
					"score": value.NewInt(int64(r.Intn(2))),
				}))
			case r.Intn(3) == 0:
				i := r.Intn(len(ids))
				_ = mut.RemoveVertex(ids[i])
				ids = append(ids[:i], ids[i+1:]...)
			default:
				// Flip between the two tied scores.
				_ = mut.SetVertexProperty(ids[r.Intn(len(ids))], "score", value.NewInt(int64(r.Intn(2))))
			}
		}
		record := func() {
			for _, name := range []string{"suffix", "top", "window"} {
				sb.WriteString(name)
				sb.WriteByte('\n')
				sb.WriteString(render(views[name].Rows()))
			}
		}
		// Identical mutation stream in every mode: four steps per round,
		// committed one-by-one (per-op) or as one transaction (batched);
		// windows are recorded at the same round boundaries.
		for i := 0; i < 60; i++ {
			if batched {
				_ = g.Batch(func(tx *graph.Tx) error {
					for j := 0; j < 4; j++ {
						step(tx)
					}
					return nil
				})
			} else {
				for j := 0; j < 4; j++ {
					step(g)
				}
			}
			record()
		}
		return sb.String()
	}

	want := transcript(modes[0].opts, modes[0].batched)
	for _, mode := range modes[1:] {
		if got := transcript(mode.opts, mode.batched); got != want {
			t.Fatalf("%s produced a different window transcript than %s", mode.name, modes[0].name)
		}
	}
}

// TestOrderedViewSharing checks that ordered plans participate in the
// subplan registry: identical top-K views share the whole network
// (TopKNode and production included), a different window over the same
// ordering shares the prefix below the Top, and DropView releases
// exactly the unshared suffix.
func TestOrderedViewSharing(t *testing.T) {
	g := graph.New()
	engine := ivm.NewEngine(g)
	defer engine.Close()
	q := "MATCH (a:P) RETURN a, a.score ORDER BY a.score DESC LIMIT 3"
	if _, err := engine.RegisterView("r1", q); err != nil {
		t.Fatal(err)
	}
	n1 := engine.NodeCount()
	if _, err := engine.RegisterView("r2", q); err != nil {
		t.Fatal(err)
	}
	if n2 := engine.NodeCount(); n2 != n1 {
		t.Fatalf("identical ordered plans should share the whole network: %d -> %d nodes", n1, n2)
	}
	// A different window over the same ordering shares the chain below
	// the Top and adds its own TopKNode + production.
	if _, err := engine.RegisterView("r3",
		"MATCH (a:P) RETURN a, a.score ORDER BY a.score DESC LIMIT 5"); err != nil {
		t.Fatal(err)
	}
	if n3 := engine.NodeCount(); n3 != n1+2 {
		t.Fatalf("want shared prefix + private TopK/production (%d nodes), got %d", n1+2, n3)
	}
	for i := 0; i < 6; i++ {
		g.AddVertex([]string{"P"}, map[string]value.Value{"score": value.NewInt(int64(i))})
	}
	if err := engine.DropView("r3"); err != nil {
		t.Fatal(err)
	}
	if got := engine.NodeCount(); got != n1 {
		t.Fatalf("DropView should release exactly the unshared suffix: %d nodes, want %d", got, n1)
	}
	v1, _ := engine.View("r1")
	if rows := v1.Rows(); len(rows) != 3 || rows[0][1].Int() != 5 {
		t.Fatalf("surviving window corrupted: %v", rows)
	}
}

// TestOrderedOnChangeRankOrder checks the delivery contract of ordered
// views: OnChange batches arrive sorted by rank, and replaying them
// over a window mirror reproduces Rows() exactly.
func TestOrderedOnChangeRankOrder(t *testing.T) {
	g := graph.New()
	engine := ivm.NewEngine(g)
	defer engine.Close()
	v, err := engine.RegisterView("top",
		"MATCH (a:P) RETURN a.name, a.score ORDER BY a.score DESC, a.name LIMIT 3")
	if err != nil {
		t.Fatal(err)
	}
	var batches [][]rete.Delta
	v.OnChange(func(ds []rete.Delta) {
		cp := make([]rete.Delta, len(ds))
		copy(cp, ds)
		batches = append(batches, cp)
	})
	if !v.Ordered() {
		t.Fatal("view should report Ordered")
	}
	r := rand.New(rand.NewSource(7))
	var ids []graph.ID
	mirror := map[string]int{}
	for i := 0; i < 80; i++ {
		switch {
		case len(ids) < 6 || r.Intn(3) == 0:
			ids = append(ids, g.AddVertex([]string{"P"}, map[string]value.Value{
				"name":  value.NewString(fmt.Sprintf("p%d", i)),
				"score": value.NewInt(int64(r.Intn(4))),
			}))
		default:
			_ = g.SetVertexProperty(ids[r.Intn(len(ids))], "score", value.NewInt(int64(r.Intn(4))))
		}
	}
	for _, ds := range batches {
		// Rank-sorted: scores must be non-increasing within the batch
		// (the first key is DESC; equal scores then order by name).
		for i := 1; i < len(ds); i++ {
			if ds[i-1].Row[1].Int() < ds[i].Row[1].Int() {
				t.Fatalf("batch not in rank order: %s before %s",
					value.RowString(ds[i-1].Row), value.RowString(ds[i].Row))
			}
		}
		for _, d := range ds {
			k := value.RowKey(d.Row)
			mirror[k] += d.Mult
			if mirror[k] == 0 {
				delete(mirror, k)
			}
		}
	}
	rows := v.Rows()
	if len(rows) != 3 {
		t.Fatalf("window size %d, want 3", len(rows))
	}
	seen := map[string]int{}
	for _, r := range rows {
		seen[value.RowKey(r)]++
	}
	if len(seen) != len(mirror) {
		t.Fatalf("OnChange mirror has %d distinct rows, view has %d", len(mirror), len(seen))
	}
	for k, m := range seen {
		if mirror[k] != m {
			t.Fatalf("OnChange mirror diverged from Rows() on %q: %d vs %d", k, mirror[k], m)
		}
	}
}
