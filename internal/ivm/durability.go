package ivm

// Durability: a write-ahead log of committed change sets (package wal)
// plus periodic incremental checkpoints of the Rete memo state (package
// checkpoint). OpenDurable is the recovery entry point: it loads the
// latest checkpoint, re-registers its views without seeding, restores
// every node memo, replays the WAL tail through the normal commit path
// (so replayed commits propagate exactly like live ones), and only then
// attaches the commit log — recovered state is byte-identical to the
// pre-crash state for everything the fsync policy made durable.

import (
	"bytes"
	"fmt"
	"sort"
	"time"

	"pgiv/internal/checkpoint"
	"pgiv/internal/graph"
	"pgiv/internal/rete"
	"pgiv/internal/wal"
)

// DurabilityOptions configures OpenDurable.
type DurabilityOptions struct {
	// WALPath is the log file; CheckpointDir the checkpoint directory.
	WALPath       string
	CheckpointDir string

	// Fsync is the WAL sync policy (wal.FsyncAlways/Interval/Off;
	// default always). FsyncInterval is the period under "interval".
	Fsync         string
	FsyncInterval time.Duration

	// CheckpointEvery writes a checkpoint after that many committed
	// change sets (0 disables automatic checkpoints; CheckpointNow still
	// works).
	CheckpointEvery int

	// FS overrides the WAL's file system (fault-injection tests).
	FS wal.FS
}

type durableState struct {
	log   *wal.Log
	store *checkpoint.Store
	every int

	// commits since the last checkpoint, and the last automatic
	// checkpoint failure. Both touched only inside the commit dispatch,
	// which the store's writer lock serialises.
	commits int
	chkErr  error
}

// walCommitLog adapts the WAL to the graph's commit-log hook: the
// coalesced change set is converted to replayable operations and
// appended (and, under fsync=always, synced) before the commit becomes
// visible.
type walCommitLog struct{ log *wal.Log }

func (w walCommitLog) AppendCommit(cs *graph.ChangeSet, epoch uint64, nextV, nextE graph.ID) error {
	ops, err := graph.OpsFromChangeSet(cs)
	if err != nil {
		return err
	}
	_, err = w.log.AppendCommit(epoch, int64(nextV), int64(nextE), ops)
	return err
}

// OpenDurable builds an engine over g with durability: g is restored
// from the latest checkpoint (if any), checkpointed views are
// re-registered and their Rete memos restored, the WAL tail past the
// checkpoint's watermark is replayed through the normal commit path, and
// the engine is left logging every subsequent commit, registration and
// drop. g must be empty.
//
// If the checkpoint's node state cannot be matched to the rebuilt
// network (e.g. the binary's plan shapes changed across versions),
// recovery falls back to re-registering the checkpointed views with a
// full seed from the restored graph — slower, never wrong.
func OpenDurable(g *graph.Graph, dopts DurabilityOptions, opts ...Options) (*Engine, error) {
	store, manifest, err := checkpoint.Open(dopts.CheckpointDir)
	if err != nil {
		return nil, err
	}
	log, records, err := wal.Open(dopts.WALPath, wal.Options{
		Fsync: dopts.Fsync, Interval: dopts.FsyncInterval, FS: dopts.FS,
	})
	if err != nil {
		return nil, err
	}
	fail := func(err error) (*Engine, error) {
		log.Close()
		return nil, err
	}

	if manifest != nil {
		data, err := store.ReadGraph(manifest)
		if err != nil {
			return fail(err)
		}
		if err := g.RestoreState(bytes.NewReader(data)); err != nil {
			return fail(fmt.Errorf("ivm: recovery: %w", err))
		}
	}
	e := NewEngine(g, opts...)
	if manifest != nil {
		if err := e.restoreViews(store, manifest); err != nil {
			// Fallback: rebuild every checkpointed view from the restored
			// graph with a normal seed.
			if err := e.reseedViews(manifest); err != nil {
				return fail(fmt.Errorf("ivm: recovery reseed: %w", err))
			}
		}
	}

	// Replay the WAL tail in log order, reproducing the original
	// interleaving of commits and view registrations. Replayed commits
	// run through the ordinary transaction and propagation path; the
	// epochs they are assigned must reproduce the logged ones (only
	// non-empty commits are logged), which doubles as a corruption check.
	var watermark uint64
	if manifest != nil {
		watermark = manifest.LSN
	}
	// A lax fsync policy can lose a log suffix the checkpoint already
	// covers; keep post-recovery LSNs above the watermark regardless.
	log.EnsureLSN(watermark)
	for _, rec := range records {
		if rec.LSN <= watermark {
			continue
		}
		switch rec.Type {
		case wal.TypeCommit:
			if err := g.ApplyReplay(rec.Ops, graph.ID(rec.NextV), graph.ID(rec.NextE)); err != nil {
				return fail(fmt.Errorf("ivm: recovery: replay lsn %d: %w", rec.LSN, err))
			}
			if got := g.Epoch(); got != rec.Epoch {
				return fail(fmt.Errorf("ivm: recovery: replay lsn %d landed at epoch %d, log says %d", rec.LSN, got, rec.Epoch))
			}
		case wal.TypeRegister:
			params, err := checkpoint.DecodeParams(rec.Params)
			if err != nil {
				return fail(fmt.Errorf("ivm: recovery: lsn %d: %w", rec.LSN, err))
			}
			e.mu.Lock()
			_, err = e.registerLocked(rec.View, rec.Query, params, true)
			e.mu.Unlock()
			if err != nil {
				return fail(fmt.Errorf("ivm: recovery: re-register %q (lsn %d): %w", rec.View, rec.LSN, err))
			}
		case wal.TypeDrop:
			e.mu.Lock()
			err := e.dropLocked(rec.View)
			e.mu.Unlock()
			if err != nil {
				return fail(fmt.Errorf("ivm: recovery: re-drop %q (lsn %d): %w", rec.View, rec.LSN, err))
			}
		default:
			return fail(fmt.Errorf("ivm: recovery: unknown record type %q at lsn %d", rec.Type, rec.LSN))
		}
	}

	e.mu.Lock()
	e.dur = &durableState{log: log, store: store, every: dopts.CheckpointEvery}
	e.mu.Unlock()
	g.SetCommitLog(walCommitLog{log})
	return e, nil
}

// restoreViews registers every checkpointed view without seeding, then
// loads each stateful node's memo from the checkpoint.
func (e *Engine) restoreViews(store *checkpoint.Store, m *checkpoint.Manifest) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	for _, vr := range m.Views {
		params, err := checkpoint.DecodeParams(vr.Params)
		if err != nil {
			return err
		}
		if _, err := e.registerLocked(vr.Name, vr.Query, params, false); err != nil {
			return err
		}
	}
	recs := make(map[string]checkpoint.NodeRecord, len(m.Nodes))
	for _, nr := range m.Nodes {
		recs[nr.Key] = nr
	}
	matched := 0
	var restoreErr error
	e.reg.ForEachMemoNode(func(key string, n rete.MemoNode) {
		if restoreErr != nil {
			return
		}
		rec, ok := recs[key]
		if !ok {
			restoreErr = fmt.Errorf("ivm: checkpoint holds no state for node %q", key)
			return
		}
		memo, err := store.ReadNode(rec)
		if err != nil {
			restoreErr = err
			return
		}
		if err := n.RestoreMemo(memo); err != nil {
			restoreErr = fmt.Errorf("ivm: restore node %q: %w", key, err)
			return
		}
		matched++
	})
	if restoreErr != nil {
		return restoreErr
	}
	if matched != len(m.Nodes) {
		return fmt.Errorf("ivm: checkpoint/network shape mismatch: matched %d of %d nodes", matched, len(m.Nodes))
	}
	return nil
}

// reseedViews is the restore fallback: drop whatever partial state
// restoreViews built and register every checkpointed view with a full
// seed from the (already restored) graph.
func (e *Engine) reseedViews(m *checkpoint.Manifest) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	for _, v := range append([]*View(nil), e.viewList...) {
		_ = e.dropLocked(v.name)
	}
	for _, vr := range m.Views {
		params, err := checkpoint.DecodeParams(vr.Params)
		if err != nil {
			return err
		}
		if _, err := e.registerLocked(vr.Name, vr.Query, params, true); err != nil {
			return err
		}
	}
	return nil
}

// maybeCheckpoint runs at the tail of every commit dispatch.
func (e *Engine) maybeCheckpoint(dur *durableState) {
	if dur == nil || dur.every <= 0 {
		return
	}
	dur.commits++
	if dur.commits < dur.every {
		return
	}
	dur.commits = 0
	// Unconditional: a later success clears an earlier failure, so
	// CheckpointError reports the latest attempt, not history.
	dur.chkErr = e.checkpointLocked()
}

// checkpointLocked writes one checkpoint. The caller guarantees no
// commit is in flight (it runs inside the commit dispatch, or under
// graph.Exclusive).
func (e *Engine) checkpointLocked() error {
	// Hold e.mu across the LSN capture and the snapshot assembly:
	// registrations and drops append their WAL record and mutate viewList
	// under e.mu, so one RLock section keeps the watermark and the view
	// list from straddling a registration (a view listed in the manifest
	// whose register record sits above the watermark would be registered
	// twice on recovery). Lock order e.mu → wal.Log.mu matches the
	// register/drop path.
	e.mu.RLock()
	defer e.mu.RUnlock()
	dur := e.dur
	if dur == nil {
		return fmt.Errorf("ivm: engine is not durable")
	}
	// Sync first so the manifest's LSN watermark never points past
	// durable log contents.
	if err := dur.log.Sync(); err != nil {
		return err
	}
	var buf bytes.Buffer
	if err := e.g.ExportState(&buf); err != nil {
		return err
	}
	nextV, nextE := e.g.NextIDs()
	snap := &checkpoint.Snapshot{
		Epoch:      e.g.Epoch(),
		LSN:        dur.log.LastLSN(),
		NextV:      int64(nextV),
		NextE:      int64(nextE),
		GraphState: buf.Bytes(),
	}
	views := append([]*View(nil), e.viewList...)
	sort.Slice(views, func(i, j int) bool { return views[i].regSeq < views[j].regSeq })
	for _, v := range views {
		snap.Views = append(snap.Views, checkpoint.ViewRecord{
			Name: v.name, Query: v.query, Params: checkpoint.EncodeParams(v.params),
		})
	}
	e.reg.ForEachMemoNode(func(key string, n rete.MemoNode) {
		ns := checkpoint.NodeState{Key: key, Version: n.MemoVersion()}
		if !dur.store.Unchanged(key, ns.Version) {
			ns.Memo = n.SnapshotMemo()
		}
		snap.Nodes = append(snap.Nodes, ns)
	})
	return dur.store.Write(snap)
}

// CheckpointNow writes a checkpoint immediately, serialised against
// commits. It must not be called from inside a commit callback (OnChange
// etc.) — the automatic cadence already covers that path.
func (e *Engine) CheckpointNow() error {
	var err error
	e.g.Exclusive(func() { err = e.checkpointLocked() })
	return err
}

// CheckpointError returns the most recent automatic-checkpoint failure,
// nil if none. Automatic checkpoints are best-effort: a failure never
// blocks the commit that triggered it.
func (e *Engine) CheckpointError() error {
	e.mu.RLock()
	defer e.mu.RUnlock()
	if e.dur == nil {
		return nil
	}
	return e.dur.chkErr
}

// CloseDurable writes a final checkpoint, flushes and closes the WAL,
// detaches the commit log and closes the engine. The first error wins
// but shutdown always completes.
func (e *Engine) CloseDurable() error {
	e.mu.RLock()
	dur := e.dur
	e.mu.RUnlock()
	if dur == nil {
		e.Close()
		return nil
	}
	var cerr error
	e.g.Exclusive(func() { cerr = e.checkpointLocked() })
	e.g.SetCommitLog(nil)
	lerr := dur.log.Close()
	e.Close()
	if cerr != nil {
		return cerr
	}
	return lerr
}

// WALLastLSN reports the durable log position (diagnostics, tests).
func (e *Engine) WALLastLSN() uint64 {
	e.mu.RLock()
	defer e.mu.RUnlock()
	if e.dur == nil {
		return 0
	}
	return e.dur.log.LastLSN()
}
