package ivm

import (
	"sort"

	"pgiv/internal/expr"
	"pgiv/internal/graph"
	"pgiv/internal/nra"
	"pgiv/internal/rete"
	"pgiv/internal/snapshot"
	"pgiv/internal/value"
)

// topOrder is the rank comparator of an ordered view — a view whose
// plan root is a Top operator (ORDER BY and/or SKIP/LIMIT at the
// RETURN level). The Rete TopKNode maintains the window *contents*;
// this applies the window *order* at the delivery boundary: Rows()
// returns the window in rank order and OnChange batches are sorted by
// rank, so subscribers see a leaderboard, not a bag. The comparator is
// snapshot.TopCompare — identical to the maintenance node and the
// snapshot oracle, tie-broken by the canonical row key, so the order is
// deterministic across per-op, batched and parallel propagation.
type topOrder struct {
	keyFns []expr.Fn
	desc   []bool
	g      graph.Reader
}

// newTopOrder compiles the view-level rank comparator for a plan rooted
// at top.
func newTopOrder(top *nra.Top, g graph.Reader, params map[string]value.Value) (*topOrder, error) {
	o := &topOrder{
		keyFns: make([]expr.Fn, len(top.Items)),
		desc:   make([]bool, len(top.Items)),
		g:      g,
	}
	for i, it := range top.Items {
		fn, err := expr.Compile(it.Expr, top.Input.Schema(), params)
		if err != nil {
			return nil, err
		}
		o.keyFns[i] = fn
		o.desc[i] = it.Desc
	}
	return o, nil
}

// keysOf evaluates the sort keys of every row (one env per call, so
// concurrent readers of one view don't share scratch).
func (o *topOrder) keysOf(rows []value.Row) []value.Row {
	env := &expr.Env{G: o.g}
	keys := make([]value.Row, len(rows))
	for i, r := range rows {
		env.Row = r
		ks := make(value.Row, len(o.keyFns))
		for j, fn := range o.keyFns {
			ks[j] = fn(env)
		}
		keys[i] = ks
	}
	return keys
}

// SortRows orders rows in place by rank.
func (o *topOrder) SortRows(rows []value.Row) {
	keys := o.keysOf(rows)
	sort.Sort(&rowSorter{rows: rows, keys: keys, desc: o.desc})
}

// SortDeltas orders a delta batch in place by the rank of each delta's
// row (retractions and assertions interleaved in window order).
func (o *topOrder) SortDeltas(ds []rete.Delta) {
	rows := make([]value.Row, len(ds))
	for i, d := range ds {
		rows[i] = d.Row
	}
	keys := o.keysOf(rows)
	sort.Sort(&deltaSorter{ds: ds, keys: keys, desc: o.desc})
}

type rowSorter struct {
	rows []value.Row
	keys []value.Row
	desc []bool
}

func (s *rowSorter) Len() int { return len(s.rows) }
func (s *rowSorter) Less(i, j int) bool {
	return snapshot.TopCompare(s.keys[i], s.keys[j], s.desc, s.rows[i], s.rows[j]) < 0
}
func (s *rowSorter) Swap(i, j int) {
	s.rows[i], s.rows[j] = s.rows[j], s.rows[i]
	s.keys[i], s.keys[j] = s.keys[j], s.keys[i]
}

type deltaSorter struct {
	ds   []rete.Delta
	keys []value.Row
	desc []bool
}

func (s *deltaSorter) Len() int { return len(s.ds) }
func (s *deltaSorter) Less(i, j int) bool {
	return snapshot.TopCompare(s.keys[i], s.keys[j], s.desc, s.ds[i].Row, s.ds[j].Row) < 0
}
func (s *deltaSorter) Swap(i, j int) {
	s.ds[i], s.ds[j] = s.ds[j], s.ds[i]
	s.keys[i], s.keys[j] = s.keys[j], s.keys[i]
}
