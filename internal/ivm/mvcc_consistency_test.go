package ivm_test

import (
	"fmt"
	"math/rand"
	"runtime"
	"sort"
	"strings"
	"sync"
	"testing"
	"time"

	"pgiv/internal/graph"
	"pgiv/internal/ivm"
	"pgiv/internal/snapshot"
	"pgiv/internal/value"
)

// consistencyPanel is the snapshot-consistency battery: one
// representative per operator family, small enough that readers can
// re-evaluate the whole panel on every pinned snapshot.
var consistencyPanel = []string{
	"MATCH (a:Person)-[:KNOWS]->(b:Person) RETURN a, b",
	"MATCH (p:Post)-[:REPLY*]->(c:Comm) RETURN p, c",
	"MATCH (p:Post) RETURN p.lang, count(*)",
	"MATCH (a:Person) WHERE NOT (a)-[:KNOWS]->(:Person) RETURN a",
	"MATCH (a:Person) OPTIONAL MATCH (a)-[:KNOWS]->(b) RETURN a, count(b)",
	"MATCH (a:Person) RETURN a, a.score ORDER BY a.score DESC LIMIT 5",
}

// digestRows canonicalises a result for equality comparison: exact row
// order for ordered results, sorted otherwise.
func digestRows(rows []value.Row, ordered bool) string {
	keys := make([]string, len(rows))
	for i, r := range rows {
		keys[i] = value.RowKey(r)
	}
	if !ordered {
		sort.Strings(keys)
	}
	return strings.Join(keys, "\n")
}

// observation is one reader-side result: a digest attributed to the
// epoch the reader pinned (or the epoch a published row set carried).
type observation struct {
	epoch  uint64
	key    string // panel query or view name
	digest string
	src    string // "snap" or "pub"
}

// TestSnapshotConsistencyFuzz is the PR's snapshot-consistency battery:
// concurrent readers re-evaluate the whole panel against pinned epoch
// snapshots — and read published view row sets — while the seeded
// differential mutation stream commits. Every digest a reader observes
// must be byte-identical to the oracle digest the writer computed for
// that epoch right after its commit: anything else is a torn commit.
// Epochs must also be monotonic per reader per read path.
func TestSnapshotConsistencyFuzz(t *testing.T) {
	steps := 200
	if testing.Short() {
		steps = 60
	}
	const nReaders = 3

	g := graph.New()
	engine := ivm.NewEngine(g)
	defer engine.Close()
	g.EnableMVCC()

	views := make([]*ivm.View, len(consistencyPanel))
	ordered := make([]bool, len(consistencyPanel))
	for i, q := range consistencyPanel {
		v, err := engine.RegisterView(fmt.Sprintf("c%02d", i), q)
		if err != nil {
			t.Fatalf("register %q: %v", q, err)
		}
		v.Watch()
		views[i] = v
		ordered[i] = v.Ordered()
	}

	// Oracle: per committed epoch, the canonical digest of every panel
	// query, computed from the live graph by the (only) writer right
	// after each commit. Written before readers start or by the writer
	// goroutine below; read only after wg.Wait.
	oracle := map[uint64]map[string]string{}
	recordOracle := func() {
		ds := make(map[string]string, len(consistencyPanel))
		for i, q := range consistencyPanel {
			res, err := snapshot.Query(g, q, nil)
			if err != nil {
				t.Fatalf("oracle %q: %v", q, err)
			}
			ds[q] = digestRows(res.Rows, ordered[i])
		}
		oracle[g.Epoch()] = ds
	}

	m := &mutator{g: g, mut: g, r: rand.New(rand.NewSource(424242)), capV: 40, capE: 80, cypherFrac: 0.4}
	for i := 0; i < 25; i++ {
		m.step(t)
	}
	recordOracle() // the state readers may pin before the first fuzz commit

	stop := make(chan struct{})
	var wg sync.WaitGroup
	obs := make([][]observation, nReaders)
	for r := 0; r < nReaders; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(1000 + r)))
			var lastSnap, lastPub uint64
			for {
				select {
				case <-stop:
					return
				default:
				}
				if rng.Intn(4) > 0 {
					snap := g.Snapshot()
					e := snap.Epoch()
					if e < lastSnap {
						t.Errorf("reader %d: snapshot epoch went backwards: %d after %d", r, e, lastSnap)
						snap.Release()
						return
					}
					lastSnap = e
					i := rng.Intn(len(consistencyPanel))
					q := consistencyPanel[i]
					res, err := snapshot.Query(snap, q, nil)
					snap.Release()
					if err != nil {
						t.Errorf("reader %d: %q at epoch %d: %v", r, q, e, err)
						return
					}
					obs[r] = append(obs[r], observation{e, q, digestRows(res.Rows, ordered[i]), "snap"})
				} else {
					i := rng.Intn(len(views))
					rows, e, ok := views[i].PublishedRows()
					if !ok {
						t.Errorf("reader %d: view %d has no published rows", r, i)
						return
					}
					if e < lastPub {
						t.Errorf("reader %d: published epoch went backwards: %d after %d", r, e, lastPub)
						return
					}
					lastPub = e
					obs[r] = append(obs[r], observation{e, consistencyPanel[i], digestRows(rows, ordered[i]), "pub"})
				}
			}
		}(r)
	}

	for i := 0; i < steps; i++ {
		m.step(t)
		recordOracle()
		// Yield so readers interleave with many distinct epochs rather
		// than the writer monopolising the scheduler slice.
		runtime.Gosched()
		if i%10 == 9 {
			time.Sleep(200 * time.Microsecond)
		}
	}
	close(stop)
	wg.Wait()

	epochs := map[uint64]bool{}
	total := 0
	for r := 0; r < nReaders; r++ {
		for _, o := range obs[r] {
			total++
			epochs[o.epoch] = true
			want, ok := oracle[o.epoch]
			if !ok {
				t.Fatalf("reader %d observed epoch %d the writer never committed (%s %q)", r, o.epoch, o.src, o.key)
			}
			if o.digest != want[o.key] {
				t.Fatalf("torn %s read at epoch %d, query %q:\n got  %q\n want %q",
					o.src, o.epoch, o.key, o.digest, want[o.key])
			}
		}
	}
	t.Logf("verified %d observations across %d distinct epochs (%d committed)", total, len(epochs), len(oracle))
	if st := g.MVCCStats(); st.PinnedReaders != 0 {
		t.Fatalf("readers done but %d pins still held", st.PinnedReaders)
	}
}
