package ivm_test

import (
	"fmt"
	"testing"

	"pgiv/internal/graph"
	"pgiv/internal/ivm"
	"pgiv/internal/snapshot"
	"pgiv/internal/value"
)

// checkAgainstOracle asserts that every view equals a fresh snapshot
// evaluation.
func checkAgainstOracle(t *testing.T, g *graph.Graph, views []*ivm.View, ctx string) {
	t.Helper()
	for _, v := range views {
		res, err := snapshot.Query(g, v.Query(), nil)
		if err != nil {
			t.Fatalf("%s: %v", ctx, err)
		}
		want := res.Sorted()
		got := v.Rows()
		if len(got) != len(want) {
			t.Fatalf("%s: %q: view %d rows, oracle %d\nview:   %s\noracle: %s",
				ctx, v.Query(), len(got), len(want), renderRows(got), renderRows(want))
		}
		for i := range got {
			if value.CompareRows(got[i], want[i]) != 0 {
				t.Fatalf("%s: %q row %d: %s vs %s", ctx, v.Query(), i,
					value.RowString(got[i]), value.RowString(want[i]))
			}
		}
	}
}

// transitiveViews registers the transitive query battery on g.
func transitiveViews(t *testing.T, g *graph.Graph) []*ivm.View {
	t.Helper()
	engine := ivm.NewEngine(g)
	queries := []string{
		"MATCH t = (a:S)-[:E*]->(b) RETURN a, b, t",
		"MATCH (a:S)-[:E*0..]->(b) RETURN a, b",
		"MATCH (a:S)-[:E*2..3]->(b:S) RETURN a, b",
		"MATCH t = (a:S)-[:E*]-(b:S) RETURN a, b, length(t)", // undirected
		"MATCH (a:S)<-[:E*1..4]-(b) RETURN a, b",             // incoming
	}
	var views []*ivm.View
	for i, q := range queries {
		v, err := engine.RegisterView(fmt.Sprintf("tc%d", i), q)
		if err != nil {
			t.Fatalf("register %q: %v", q, err)
		}
		views = append(views, v)
	}
	return views
}

// TestTransitiveCycle: edge-distinct path enumeration stays finite and
// correct on a 3-cycle under churn.
func TestTransitiveCycle(t *testing.T) {
	g := graph.New()
	var ids []graph.ID
	for i := 0; i < 3; i++ {
		ids = append(ids, g.AddVertex([]string{"S"}, nil))
	}
	views := transitiveViews(t, g)
	var eids []graph.ID
	for i := 0; i < 3; i++ {
		e, err := g.AddEdge(ids[i], ids[(i+1)%3], "E", nil)
		if err != nil {
			t.Fatal(err)
		}
		eids = append(eids, e)
		checkAgainstOracle(t, g, views, fmt.Sprintf("after cycle edge %d", i))
	}
	// Add a chord creating parallel paths, then remove cycle edges.
	if _, err := g.AddEdge(ids[0], ids[2], "E", nil); err != nil {
		t.Fatal(err)
	}
	checkAgainstOracle(t, g, views, "after chord")
	for i, e := range eids {
		if err := g.RemoveEdge(e); err != nil {
			t.Fatal(err)
		}
		checkAgainstOracle(t, g, views, fmt.Sprintf("after removing edge %d", i))
	}
}

// TestTransitiveDiamond: multiple distinct paths between the same pair.
func TestTransitiveDiamond(t *testing.T) {
	g := graph.New()
	a := g.AddVertex([]string{"S"}, nil)
	b := g.AddVertex([]string{"S"}, nil)
	c := g.AddVertex([]string{"S"}, nil)
	d := g.AddVertex([]string{"S"}, nil)
	views := transitiveViews(t, g)
	edges := [][2]graph.ID{{a, b}, {a, c}, {b, d}, {c, d}, {a, d}}
	var eids []graph.ID
	for i, p := range edges {
		e, err := g.AddEdge(p[0], p[1], "E", nil)
		if err != nil {
			t.Fatal(err)
		}
		eids = append(eids, e)
		checkAgainstOracle(t, g, views, fmt.Sprintf("diamond edge %d", i))
	}
	// The first view sees a->d via three distinct paths.
	res, _ := snapshot.Query(g, "MATCH t = (x:S)-[:E*]->(y) WHERE x = $ignore RETURN t", map[string]value.Value{"ignore": value.NewVertex(a)})
	_ = res
	// Remove the middle of one branch.
	if err := g.RemoveEdge(eids[2]); err != nil {
		t.Fatal(err)
	}
	checkAgainstOracle(t, g, views, "after branch removal")
}

// TestTransitiveSelfLoop: self-loops participate once per orientation.
func TestTransitiveSelfLoop(t *testing.T) {
	g := graph.New()
	a := g.AddVertex([]string{"S"}, nil)
	b := g.AddVertex([]string{"S"}, nil)
	views := transitiveViews(t, g)
	if _, err := g.AddEdge(a, a, "E", nil); err != nil {
		t.Fatal(err)
	}
	checkAgainstOracle(t, g, views, "after self-loop")
	if _, err := g.AddEdge(a, b, "E", nil); err != nil {
		t.Fatal(err)
	}
	checkAgainstOracle(t, g, views, "after self-loop + edge")
}

// TestTransitiveDstLabelFlip: destination label changes must re-qualify
// path endpoints.
func TestTransitiveDstLabelFlip(t *testing.T) {
	g := graph.New()
	a := g.AddVertex([]string{"S"}, nil)
	b := g.AddVertex([]string{"S"}, nil)
	c := g.AddVertex(nil, nil) // unlabelled
	views := transitiveViews(t, g)
	if _, err := g.AddEdge(a, b, "E", nil); err != nil {
		t.Fatal(err)
	}
	if _, err := g.AddEdge(b, c, "E", nil); err != nil {
		t.Fatal(err)
	}
	checkAgainstOracle(t, g, views, "before label flip")
	if err := g.AddVertexLabel(c, "S"); err != nil {
		t.Fatal(err)
	}
	checkAgainstOracle(t, g, views, "after label add")
	if err := g.RemoveVertexLabel(b, "S"); err != nil {
		t.Fatal(err)
	}
	checkAgainstOracle(t, g, views, "after label remove")
}

// TestTransitiveDstPropertyFlip: pushed-down destination properties must
// update inside fragments.
func TestTransitiveDstPropertyFlip(t *testing.T) {
	g := graph.New()
	engine := ivm.NewEngine(g)
	v, err := engine.RegisterView("tp",
		"MATCH (a:S)-[:E*]->(b:S) WHERE b.x = 1 RETURN a, b")
	if err != nil {
		t.Fatal(err)
	}
	a := g.AddVertex([]string{"S"}, nil)
	b := g.AddVertex([]string{"S"}, map[string]value.Value{"x": value.NewInt(1)})
	if _, err := g.AddEdge(a, b, "E", nil); err != nil {
		t.Fatal(err)
	}
	if len(v.Rows()) != 1 {
		t.Fatalf("rows = %d, want 1", len(v.Rows()))
	}
	if err := g.SetVertexProperty(b, "x", value.NewInt(2)); err != nil {
		t.Fatal(err)
	}
	if len(v.Rows()) != 0 {
		t.Fatalf("rows after flip = %d, want 0", len(v.Rows()))
	}
	if err := g.SetVertexProperty(b, "x", value.NewInt(1)); err != nil {
		t.Fatal(err)
	}
	if len(v.Rows()) != 1 {
		t.Fatalf("rows after restore = %d, want 1", len(v.Rows()))
	}
}

// TestTransitiveSourceChurn: sources entering and leaving the left input
// acquire and release path memories.
func TestTransitiveSourceChurn(t *testing.T) {
	g := graph.New()
	views := transitiveViews(t, g)
	a := g.AddVertex(nil, nil) // not a source yet (no :S)
	b := g.AddVertex([]string{"S"}, nil)
	if _, err := g.AddEdge(a, b, "E", nil); err != nil {
		t.Fatal(err)
	}
	checkAgainstOracle(t, g, views, "before source label")
	if err := g.AddVertexLabel(a, "S"); err != nil {
		t.Fatal(err)
	}
	checkAgainstOracle(t, g, views, "after source label add")
	if err := g.RemoveVertexLabel(a, "S"); err != nil {
		t.Fatal(err)
	}
	checkAgainstOracle(t, g, views, "after source label remove")
	if err := g.RemoveVertex(a); err != nil {
		t.Fatal(err)
	}
	checkAgainstOracle(t, g, views, "after source removal")
}
