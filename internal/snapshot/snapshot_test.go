package snapshot

import (
	"strings"
	"testing"

	"pgiv/internal/graph"
	"pgiv/internal/value"
)

// fixture builds the small social graph used by most snapshot tests:
//
//	Post 1 (en) -REPLY-> Comm 2 (en) -REPLY-> Comm 3 (de)
//	Person 4 (Ann, 10) -KNOWS-> Person 5 (Bob, 20) -KNOWS-> Person 4
//	Person 4 -LIKES-> Post 1
func fixture(t *testing.T) *graph.Graph {
	t.Helper()
	g := graph.New()
	p1 := g.AddVertex([]string{"Post"}, props("lang", "en"))
	c2 := g.AddVertex([]string{"Comm"}, props("lang", "en"))
	c3 := g.AddVertex([]string{"Comm"}, props("lang", "de"))
	a := g.AddVertex([]string{"Person"}, map[string]value.Value{
		"name": value.NewString("Ann"), "score": value.NewInt(10)})
	b := g.AddVertex([]string{"Person"}, map[string]value.Value{
		"name": value.NewString("Bob"), "score": value.NewInt(20)})
	mustEdge(t, g, p1, c2, "REPLY")
	mustEdge(t, g, c2, c3, "REPLY")
	mustEdge(t, g, a, b, "KNOWS")
	mustEdge(t, g, b, a, "KNOWS")
	mustEdge(t, g, a, p1, "LIKES")
	return g
}

func props(k, v string) map[string]value.Value {
	return map[string]value.Value{k: value.NewString(v)}
}

func mustEdge(t *testing.T, g *graph.Graph, s, d graph.ID, typ string) graph.ID {
	t.Helper()
	id, err := g.AddEdge(s, d, typ, nil)
	if err != nil {
		t.Fatal(err)
	}
	return id
}

// run evaluates a query and renders the sorted rows.
func run(t *testing.T, g *graph.Graph, q string) string {
	t.Helper()
	res, err := Query(g, q, nil)
	if err != nil {
		t.Fatalf("query %q: %v", q, err)
	}
	var parts []string
	for _, r := range res.Sorted() {
		parts = append(parts, value.RowString(r))
	}
	return strings.Join(parts, " ")
}

func TestGetVerticesAndSelect(t *testing.T) {
	g := fixture(t)
	cases := map[string]string{
		"MATCH (p:Post) RETURN p":                           "((#1))",
		"MATCH (c:Comm) RETURN c.lang":                      `("de") ("en")`,
		"MATCH (a:Person) WHERE a.score > 15 RETURN a.name": `("Bob")`,
		"MATCH (x:Nope) RETURN x":                           "",
		"MATCH (a:Person {name: 'Ann'}) RETURN a":           "((#4))",
	}
	for q, want := range cases {
		if got := run(t, g, q); got != want {
			t.Errorf("%s:\n got  %s\n want %s", q, got, want)
		}
	}
}

func TestExpansionsAndJoins(t *testing.T) {
	g := fixture(t)
	cases := map[string]string{
		"MATCH (p:Post)-[:REPLY]->(c) RETURN p, c":                      "((#1), (#2))",
		"MATCH (c)<-[:REPLY]-(p:Post) RETURN c":                         "((#2))",
		"MATCH (a:Person)-[:KNOWS]-(b:Person) RETURN a, b":              "((#4), (#5)) ((#4), (#5)) ((#5), (#4)) ((#5), (#4))",
		"MATCH (a:Person)-[:KNOWS]->(b)-[:KNOWS]->(a) RETURN a, b":      "((#4), (#5)) ((#5), (#4))",
		"MATCH (a:Person)-[:LIKES]->(p:Post)-[:REPLY]->(c) RETURN a, c": "((#4), (#2))",
	}
	for q, want := range cases {
		if got := run(t, g, q); got != want {
			t.Errorf("%s:\n got  %s\n want %s", q, got, want)
		}
	}
}

func TestTransitive(t *testing.T) {
	g := fixture(t)
	cases := map[string]string{
		"MATCH (p:Post)-[:REPLY*]->(c:Comm) RETURN p, c":          "((#1), (#2)) ((#1), (#3))",
		"MATCH (p:Post)-[:REPLY*2..]->(c:Comm) RETURN p, c":       "((#1), (#3))",
		"MATCH (p:Post)-[:REPLY*0..]->(m) RETURN m":               "((#1)) ((#2)) ((#3))",
		"MATCH t = (p:Post)-[:REPLY*]->(c:Comm) RETURN length(t)": "(1) (2)",
	}
	for q, want := range cases {
		if got := run(t, g, q); got != want {
			t.Errorf("%s:\n got  %s\n want %s", q, got, want)
		}
	}
}

func TestRelationshipUniqueness(t *testing.T) {
	g := graph.New()
	a := g.AddVertex([]string{"A"}, nil)
	b := g.AddVertex([]string{"A"}, nil)
	mustEdge(t, g, a, b, "X")
	mustEdge(t, g, b, a, "X")
	// Without uniqueness (a)-[e]->(b)-[f]->(a) with e == f would match
	// using the same edge twice; with it only the two-edge round trips
	// survive.
	got := run(t, g, "MATCH (x:A)-[e:X]->(y)-[f:X]->(x) RETURN x")
	if got != "((#1)) ((#2))" {
		t.Errorf("round trips = %s", got)
	}
	// A single edge cannot form the 2-cycle alone.
	g2 := graph.New()
	c := g2.AddVertex([]string{"A"}, nil)
	d := g2.AddVertex([]string{"A"}, nil)
	mustEdge(t, g2, c, d, "X")
	if got := run(t, g2, "MATCH (x:A)-[e:X]->(y)-[f:X]->(x) RETURN x"); got != "" {
		t.Errorf("expected no match, got %s", got)
	}
}

func TestAggregates(t *testing.T) {
	g := fixture(t)
	cases := map[string]string{
		"MATCH (a:Person) RETURN count(*)":                                 "(2)",
		"MATCH (a:Person) RETURN sum(a.score), min(a.score), max(a.score)": "(30, 10, 20)",
		"MATCH (a:Person) RETURN avg(a.score)":                             "(15)",
		"MATCH (a:Person) RETURN collect(a.name)":                          `(["Ann", "Bob"])`,
		"MATCH (c:Comm) RETURN c.lang, count(*)":                           `("de", 1) ("en", 1)`,
		"MATCH (x:Nope) RETURN count(*), sum(x.s), min(x.s), collect(x)":   "(0, 0, null, [])",
		"MATCH (a:Person) RETURN count(a.missing)":                         "(0)",
	}
	for q, want := range cases {
		if got := run(t, g, q); got != want {
			t.Errorf("%s:\n got  %s\n want %s", q, got, want)
		}
	}
}

func TestDistinctUnwindOrderSkipLimit(t *testing.T) {
	g := fixture(t)
	cases := map[string]string{
		"MATCH (c:Comm) RETURN DISTINCT 1":                 "(1)",
		"UNWIND [3, 1, 2, 1] AS x RETURN x ORDER BY x":     "(1) (1) (2) (3)",
		"UNWIND [3, 1, 2] AS x RETURN x ORDER BY x DESC":   "(1) (2) (3)", // sorted canonically by test harness
		"UNWIND [1, 2, 3, 4] AS x RETURN x SKIP 1 LIMIT 2": "(2) (3)",
		"UNWIND null AS x RETURN x":                        "",
		"UNWIND 5 AS x RETURN x":                           "(5)",
		"UNWIND [] AS x RETURN x":                          "",
	}
	for q, want := range cases {
		if got := run(t, g, q); got != want {
			t.Errorf("%s:\n got  %s\n want %s", q, got, want)
		}
	}
	// ORDER BY actually orders (unsorted check).
	res, err := Query(g, "UNWIND [3, 1, 2] AS x RETURN x ORDER BY x DESC", nil)
	if err != nil {
		t.Fatal(err)
	}
	if !value.Equal(res.Rows[0][0], value.NewInt(3)) {
		t.Errorf("DESC order wrong: %v", res.Rows)
	}
}

func TestPathUnwinding(t *testing.T) {
	g := fixture(t)
	got := run(t, g, "MATCH t = (p:Post)-[:REPLY*2..2]->(c:Comm) UNWIND nodes(t) AS n RETURN n")
	if got != "((#1)) ((#2)) ((#3))" {
		t.Errorf("path unwinding = %s", got)
	}
}

func TestPatternPredicates(t *testing.T) {
	g := fixture(t)
	cases := map[string]string{
		"MATCH (m:Comm) WHERE NOT (m)-[:REPLY]->(:Comm) RETURN m":        "((#3))",
		"MATCH (m:Comm) WHERE (m)-[:REPLY]->(:Comm) RETURN m":            "((#2))",
		"MATCH (a:Person) WHERE NOT (a)-[:LIKES]->(:Post) RETURN a.name": `("Bob")`,
	}
	for q, want := range cases {
		if got := run(t, g, q); got != want {
			t.Errorf("%s:\n got  %s\n want %s", q, got, want)
		}
	}
}

func TestParameters(t *testing.T) {
	g := fixture(t)
	res, err := Query(g, "MATCH (a:Person) WHERE a.score > $min RETURN a.name",
		map[string]value.Value{"min": value.NewInt(15)})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 || res.Rows[0][0].Str() != "Bob" {
		t.Errorf("rows = %v", res.Rows)
	}
}

func TestSkipLimitValidation(t *testing.T) {
	g := fixture(t)
	if _, err := Query(g, "MATCH (a) RETURN a LIMIT -1", nil); err == nil {
		t.Error("negative LIMIT should fail")
	}
	if _, err := Query(g, "MATCH (a) RETURN a SKIP 'x'", nil); err == nil {
		t.Error("non-integer SKIP should fail")
	}
}

func TestMultipleEdgeTypes(t *testing.T) {
	g := fixture(t)
	got := run(t, g, "MATCH (a:Person)-[e:KNOWS|LIKES]->(x) RETURN a, x")
	if got != "((#4), (#1)) ((#4), (#5)) ((#5), (#4))" {
		t.Errorf("multi-type = %s", got)
	}
}

func TestSelfLoopUndirected(t *testing.T) {
	g := graph.New()
	a := g.AddVertex([]string{"A"}, nil)
	mustEdge(t, g, a, a, "X")
	// An undirected pattern must match a self-loop exactly once.
	if got := run(t, g, "MATCH (x:A)-[:X]-(y) RETURN x, y"); got != "((#1), (#1))" {
		t.Errorf("self-loop = %s", got)
	}
}
