// Package snapshot implements a non-incremental evaluator for FRA plans:
// every call re-evaluates the query against the current graph from
// scratch.
//
// It serves two roles in the reproduction:
//
//   - it is the baseline an incremental engine is measured against (the
//     paper's motivation: complex queries with low latency requirements
//     cannot afford full recomputation), and
//   - it is the test oracle: the differential test harness checks after
//     every update that the Rete-maintained view equals a fresh snapshot
//     evaluation — for ordered views row for row, in window order.
//
// It supports the full parsed language; the incremental engine accepts
// the maintainable fragment (which since PR 5 includes
// ORDER BY/SKIP/LIMIT with keys over the returned columns — this
// package's Top evaluation defines the ordering contract both engines
// share, see TopCompare).
package snapshot

import (
	"fmt"
	"sort"
	"strings"

	"pgiv/internal/cypher"
	"pgiv/internal/expr"
	"pgiv/internal/fra"
	"pgiv/internal/gra"
	"pgiv/internal/graph"
	"pgiv/internal/nra"
	"pgiv/internal/schema"
	"pgiv/internal/value"
)

// Result is an evaluated query result: a schema and a bag of rows. Row
// order is deterministic only if the query has ORDER BY; Sorted() gives a
// canonical order for comparisons.
type Result struct {
	Schema schema.Schema
	Rows   []value.Row
}

// Sorted returns the rows in canonical (lexicographic) order; it does not
// modify the result.
func (r *Result) Sorted() []value.Row {
	out := make([]value.Row, len(r.Rows))
	copy(out, r.Rows)
	sort.Slice(out, func(i, j int) bool { return value.CompareRows(out[i], out[j]) < 0 })
	return out
}

// Query parses, compiles and evaluates a query against g.
func Query(g graph.Reader, query string, params map[string]value.Value) (*Result, error) {
	plan, err := fra.CompileString(query)
	if err != nil {
		return nil, err
	}
	return Eval(g, plan, params)
}

// Eval evaluates a compiled plan against g.
func Eval(g graph.Reader, plan *fra.Plan, params map[string]value.Value) (*Result, error) {
	ev := &evaluator{g: g, params: params}
	rows, err := ev.eval(plan.Root)
	if err != nil {
		return nil, err
	}
	return &Result{Schema: plan.OutSchema, Rows: rows}, nil
}

// EvalWithRows evaluates an NRA tree in which one designated leaf
// operator (matched by pointer identity) is answered from a precomputed
// row bag instead of being evaluated — the residual-over-memo path of
// the query-rewrite planner. Property lookups in residual expressions
// still go through g, so callers pass an epoch-pinned snapshot matching
// the memo's publish epoch.
func EvalWithRows(g graph.Reader, root nra.Op, out schema.Schema, leaf nra.Op, leafRows []value.Row, params map[string]value.Value) (*Result, error) {
	ev := &evaluator{g: g, params: params, leaf: leaf, leafRows: leafRows}
	rows, err := ev.eval(root)
	if err != nil {
		return nil, err
	}
	return &Result{Schema: out, Rows: rows}, nil
}

type evaluator struct {
	g      graph.Reader
	params map[string]value.Value

	leaf     nra.Op // when non-nil, eval(leaf) short-circuits to leafRows
	leafRows []value.Row
}

func (ev *evaluator) compile(e cypher.Expr, s schema.Schema) (expr.Fn, error) {
	return expr.Compile(e, s, ev.params)
}

func (ev *evaluator) eval(op nra.Op) ([]value.Row, error) {
	if ev.leaf != nil && op == ev.leaf {
		return ev.leafRows, nil
	}
	switch o := op.(type) {
	case *nra.Unit:
		return []value.Row{{}}, nil
	case *nra.GetVertices:
		return ev.evalGetVertices(o), nil
	case *nra.GetEdges:
		return ev.evalGetEdges(o), nil
	case *nra.TransitiveJoin:
		return ev.evalTransitiveJoin(o)
	case *nra.ShortestPath:
		return ev.evalShortestPath(o)
	case *nra.Join:
		return ev.evalJoin(o)
	case *nra.LeftOuterJoin:
		return ev.evalLeftOuterJoin(o)
	case *nra.SemiJoin:
		return ev.evalSemiJoin(o.L, o.R, false)
	case *nra.AntiJoin:
		return ev.evalSemiJoin(o.L, o.R, true)
	case *nra.Select:
		return ev.evalSelect(o)
	case *nra.Project:
		return ev.evalProject(o)
	case *nra.Dedup:
		return ev.evalDedup(o)
	case *nra.AllDifferent:
		return ev.evalAllDifferent(o)
	case *nra.PathBuild:
		return ev.evalPathBuild(o)
	case *nra.Aggregate:
		return ev.evalAggregate(o)
	case *nra.Unwind:
		return ev.evalUnwind(o)
	case *nra.Top:
		return ev.evalTop(o)
	}
	return nil, fmt.Errorf("snapshot: unsupported operator %T", op)
}

func vertexMatches(v *graph.Vertex, labels []string) bool {
	for _, l := range labels {
		if !v.HasLabel(l) {
			return false
		}
	}
	return true
}

func (ev *evaluator) evalGetVertices(o *nra.GetVertices) []value.Row {
	primary := ""
	if len(o.Labels) > 0 {
		primary = o.Labels[0]
	}
	var rows []value.Row
	for _, v := range ev.g.VerticesByLabel(primary) {
		if !vertexMatches(v, o.Labels) {
			continue
		}
		row := make(value.Row, 0, 1+len(o.Props))
		row = append(row, value.NewVertex(v.ID))
		for _, p := range o.Props {
			row = append(row, v.Prop(p.Key))
		}
		rows = append(rows, row)
	}
	return rows
}

// edgeRow builds a GetEdges output row for one orientation (a → b).
func edgeRow(o *nra.GetEdges, a, b *graph.Vertex, e *graph.Edge) value.Row {
	row := make(value.Row, 0, 3+len(o.AProps)+len(o.EProps)+len(o.BProps))
	row = append(row, value.NewVertex(a.ID), value.NewEdge(e.ID), value.NewVertex(b.ID))
	for _, p := range o.AProps {
		row = append(row, a.Prop(p.Key))
	}
	for _, p := range o.EProps {
		row = append(row, e.Prop(p.Key))
	}
	for _, p := range o.BProps {
		row = append(row, b.Prop(p.Key))
	}
	return row
}

func (ev *evaluator) evalGetEdges(o *nra.GetEdges) []value.Row {
	types := o.Types
	if len(types) == 0 {
		types = []string{""}
	}
	var rows []value.Row
	for _, t := range types {
		for _, e := range ev.g.EdgesByType(t) {
			src, okS := ev.g.VertexByID(e.Src)
			trg, okT := ev.g.VertexByID(e.Trg)
			if !okS || !okT {
				continue
			}
			if vertexMatches(src, o.ALabels) && vertexMatches(trg, o.BLabels) {
				rows = append(rows, edgeRow(o, src, trg, e))
			}
			if o.Undirected && e.Src != e.Trg &&
				vertexMatches(trg, o.ALabels) && vertexMatches(src, o.BLabels) {
				rows = append(rows, edgeRow(o, trg, src, e))
			}
		}
	}
	return rows
}

// PathEnum enumerates edge-distinct paths from a source vertex following
// edges of the given types in the given direction, invoking emit for every
// path whose length lies within [min, max] (max == -1 means unbounded) and
// whose final vertex carries all dstLabels. It is shared with the Rete
// transitive-join node (package rete), which must produce identical path
// sets.
func PathEnum(g graph.Reader, src graph.ID, types []string, dir cypher.Direction, min, max int, dstLabels []string, emit func(p *value.Path, dst *graph.Vertex)) {
	srcV, ok := g.VertexByID(src)
	if !ok {
		return
	}
	if min == 0 && vertexMatches(srcV, dstLabels) {
		emit(&value.Path{Vertices: []int64{src}}, srcV)
	}
	used := make(map[graph.ID]bool)
	var dfs func(cur graph.ID, p *value.Path)
	dfs = func(cur graph.ID, p *value.Path) {
		if max != -1 && p.Len() >= max {
			return
		}
		forEachExpansionStep(g, cur, types, dir, func(edge, nextID graph.ID) {
			if used[edge] {
				return
			}
			next, ok := g.VertexByID(nextID)
			if !ok {
				return
			}
			np := p.Extend(edge, nextID)
			if np.Len() >= min && vertexMatches(next, dstLabels) {
				emit(np, next)
			}
			used[edge] = true
			dfs(nextID, np)
			used[edge] = false
		})
	}
	dfs(src, &value.Path{Vertices: []int64{src}})
}

var allEdgeTypes = []string{""}

// forEachExpansionStep invokes fn for every one-hop expansion from cur,
// walking the graph's typed adjacency index without allocating a step
// list. Iteration is re-entrant: fn may recurse.
func forEachExpansionStep(g graph.Reader, cur graph.ID, types []string, dir cypher.Direction, fn func(edge, next graph.ID)) {
	ts := types
	if len(ts) == 0 {
		ts = allEdgeTypes
	}
	for _, t := range ts {
		if dir == cypher.DirOut || dir == cypher.DirBoth {
			// Range over the returned adjacency slice rather than passing
			// a closure through the Reader interface: an interface call
			// defeats escape analysis, so the closure (and fn with it)
			// would be heap-allocated on every expansion step of every
			// path. The slice is an immutable snapshot either way.
			for _, e := range g.OutEdges(cur, t) {
				fn(e.ID, e.Trg)
			}
		}
		if dir == cypher.DirIn || dir == cypher.DirBoth {
			for _, e := range g.InEdges(cur, t) {
				// A self-loop already appears among the out-edges in
				// DirBoth mode; do not traverse it twice.
				if dir == cypher.DirBoth && e.Src == e.Trg {
					continue
				}
				fn(e.ID, e.Src)
			}
		}
	}
}

func (ev *evaluator) evalTransitiveJoin(o *nra.TransitiveJoin) ([]value.Row, error) {
	in, err := ev.eval(o.Input)
	if err != nil {
		return nil, err
	}
	srcIdx := o.Input.Schema().Index(o.SrcAttr)
	if srcIdx < 0 {
		return nil, fmt.Errorf("snapshot: transitive join source %q not in input schema", o.SrcAttr)
	}
	var rows []value.Row
	for _, row := range in {
		srcVal := row[srcIdx]
		if srcVal.Kind() != value.KindVertex {
			continue
		}
		PathEnum(ev.g, srcVal.ID(), o.Types, o.Dir, o.Min, o.Max, o.DstLabels, func(p *value.Path, dst *graph.Vertex) {
			out := make(value.Row, 0, len(row)+2+len(o.DstProps))
			out = append(out, row...)
			out = append(out, value.NewVertex(dst.ID))
			if o.PathAttr != "" {
				out = append(out, value.NewPath(p))
			}
			for _, ps := range o.DstProps {
				out = append(out, dst.Prop(ps.Key))
			}
			rows = append(rows, out)
		})
	}
	return rows, nil
}

func (ev *evaluator) evalJoin(o *nra.Join) ([]value.Row, error) {
	left, err := ev.eval(o.L)
	if err != nil {
		return nil, err
	}
	right, err := ev.eval(o.R)
	if err != nil {
		return nil, err
	}
	lIdx, rIdx, rKeep := schema.JoinKeys(o.L.Schema(), o.R.Schema())
	index := make(map[string][]value.Row)
	var keyBuf []byte
	for _, rr := range right {
		keyBuf = keyBuf[:0]
		for _, i := range rIdx {
			keyBuf = value.AppendKey(keyBuf, rr[i])
		}
		index[string(keyBuf)] = append(index[string(keyBuf)], rr)
	}
	var rows []value.Row
	for _, lr := range left {
		keyBuf = keyBuf[:0]
		for _, i := range lIdx {
			keyBuf = value.AppendKey(keyBuf, lr[i])
		}
		for _, rr := range index[string(keyBuf)] {
			out := make(value.Row, 0, len(lr)+len(rKeep))
			out = append(out, lr...)
			for _, i := range rKeep {
				out = append(out, rr[i])
			}
			rows = append(rows, out)
		}
	}
	return rows, nil
}

// evalLeftOuterJoin implements the natural left outer join: every left
// row pairs with each of its matches in R on the shared attributes
// (bag semantics — one output row per match); a matchless left row
// survives once with R's non-shared attributes null-padded.
func (ev *evaluator) evalLeftOuterJoin(o *nra.LeftOuterJoin) ([]value.Row, error) {
	left, err := ev.eval(o.L)
	if err != nil {
		return nil, err
	}
	right, err := ev.eval(o.R)
	if err != nil {
		return nil, err
	}
	lIdx, rIdx, rKeep := schema.JoinKeys(o.L.Schema(), o.R.Schema())
	index := make(map[string][]value.Row)
	var keyBuf []byte
	for _, rr := range right {
		keyBuf = keyBuf[:0]
		for _, i := range rIdx {
			keyBuf = value.AppendKey(keyBuf, rr[i])
		}
		index[string(keyBuf)] = append(index[string(keyBuf)], rr)
	}
	var rows []value.Row
	for _, lr := range left {
		keyBuf = keyBuf[:0]
		for _, i := range lIdx {
			keyBuf = value.AppendKey(keyBuf, lr[i])
		}
		matches := index[string(keyBuf)]
		if len(matches) == 0 {
			out := make(value.Row, 0, len(lr)+len(rKeep))
			out = append(out, lr...)
			for range rKeep {
				out = append(out, value.Null)
			}
			rows = append(rows, out)
			continue
		}
		for _, rr := range matches {
			out := make(value.Row, 0, len(lr)+len(rKeep))
			out = append(out, lr...)
			for _, i := range rKeep {
				out = append(out, rr[i])
			}
			rows = append(rows, out)
		}
	}
	return rows, nil
}

// evalSemiJoin implements semijoin (negate=false) and antijoin
// (negate=true) on the shared attributes of L and R.
func (ev *evaluator) evalSemiJoin(lop, rop nra.Op, negate bool) ([]value.Row, error) {
	left, err := ev.eval(lop)
	if err != nil {
		return nil, err
	}
	right, err := ev.eval(rop)
	if err != nil {
		return nil, err
	}
	lIdx, rIdx, _ := schema.JoinKeys(lop.Schema(), rop.Schema())
	keys := make(map[string]bool)
	var buf []byte
	for _, rr := range right {
		buf = buf[:0]
		for _, i := range rIdx {
			buf = value.AppendKey(buf, rr[i])
		}
		keys[string(buf)] = true
	}
	var rows []value.Row
	for _, lr := range left {
		buf = buf[:0]
		for _, i := range lIdx {
			buf = value.AppendKey(buf, lr[i])
		}
		if keys[string(buf)] != negate {
			rows = append(rows, lr)
		}
	}
	return rows, nil
}

func (ev *evaluator) evalSelect(o *nra.Select) ([]value.Row, error) {
	in, err := ev.eval(o.Input)
	if err != nil {
		return nil, err
	}
	fn, err := ev.compile(o.Cond, o.Input.Schema())
	if err != nil {
		return nil, err
	}
	env := &expr.Env{G: ev.g}
	var rows []value.Row
	for _, row := range in {
		env.Row = row
		if ok, known := expr.Truth(fn(env)); known && ok {
			rows = append(rows, row)
		}
	}
	return rows, nil
}

func (ev *evaluator) evalProject(o *nra.Project) ([]value.Row, error) {
	in, err := ev.eval(o.Input)
	if err != nil {
		return nil, err
	}
	fns := make([]expr.Fn, len(o.Items))
	for i, it := range o.Items {
		fn, err := ev.compile(it.Expr, o.Input.Schema())
		if err != nil {
			return nil, err
		}
		fns[i] = fn
	}
	env := &expr.Env{G: ev.g}
	rows := make([]value.Row, 0, len(in))
	for _, row := range in {
		env.Row = row
		out := make(value.Row, len(fns))
		for i, fn := range fns {
			out[i] = fn(env)
		}
		rows = append(rows, out)
	}
	return rows, nil
}

func (ev *evaluator) evalDedup(o *nra.Dedup) ([]value.Row, error) {
	in, err := ev.eval(o.Input)
	if err != nil {
		return nil, err
	}
	seen := make(map[string]bool, len(in))
	var rows []value.Row
	for _, row := range in {
		k := value.RowKey(row)
		if !seen[k] {
			seen[k] = true
			rows = append(rows, row)
		}
	}
	return rows, nil
}

// EdgesDisjoint checks openCypher's relationship uniqueness over a row:
// the single edges (edgeIdx positions) and path edges (pathIdx positions)
// must be pairwise distinct. Shared with the Rete AllDifferent node.
func EdgesDisjoint(row value.Row, edgeIdx, pathIdx []int) bool {
	seen := make(map[int64]bool)
	for _, i := range edgeIdx {
		v := row[i]
		if v.Kind() != value.KindEdge {
			continue
		}
		if seen[v.ID()] {
			return false
		}
		seen[v.ID()] = true
	}
	for _, i := range pathIdx {
		v := row[i]
		if v.Kind() != value.KindPath {
			continue
		}
		for _, e := range v.Path().Edges {
			if seen[e] {
				return false
			}
			seen[e] = true
		}
	}
	return true
}

func (ev *evaluator) evalAllDifferent(o *nra.AllDifferent) ([]value.Row, error) {
	in, err := ev.eval(o.Input)
	if err != nil {
		return nil, err
	}
	s := o.Input.Schema()
	edgeIdx := make([]int, 0, len(o.EdgeAttrs))
	for _, a := range o.EdgeAttrs {
		i := s.Index(a)
		if i < 0 {
			return nil, fmt.Errorf("snapshot: all-different attribute %q missing", a)
		}
		edgeIdx = append(edgeIdx, i)
	}
	pathIdx := make([]int, 0, len(o.PathAttrs))
	for _, a := range o.PathAttrs {
		i := s.Index(a)
		if i < 0 {
			return nil, fmt.Errorf("snapshot: all-different attribute %q missing", a)
		}
		pathIdx = append(pathIdx, i)
	}
	var rows []value.Row
	for _, row := range in {
		if EdgesDisjoint(row, edgeIdx, pathIdx) {
			rows = append(rows, row)
		}
	}
	return rows, nil
}

// PathItemRef is a path-construction item resolved to a row position.
// Shared with the Rete PathBuild node.
type PathItemRef struct {
	Kind gra.PathItemKind
	Idx  int
}

// ResolvePathItems maps plan path items to row positions.
func ResolvePathItems(items []gra.PathItem, s schema.Schema) ([]PathItemRef, error) {
	out := make([]PathItemRef, 0, len(items))
	for _, it := range items {
		idx := s.Index(it.Attr)
		if idx < 0 {
			return nil, fmt.Errorf("snapshot: path item attribute %q missing from schema %s", it.Attr, s)
		}
		out = append(out, PathItemRef{Kind: it.Kind, Idx: idx})
	}
	return out, nil
}

// BuildPath assembles a path value from a row according to the resolved
// construction items. It returns false if any referenced value has an
// unexpected kind. Sub-paths are spliced: their first vertex coincides
// with the previously appended vertex, and the vertex item following a
// sub-path is the sub-path's own endpoint and is skipped.
func BuildPath(row value.Row, items []PathItemRef) (*value.Path, bool) {
	p := &value.Path{}
	prevSub := false
	for _, it := range items {
		v := row[it.Idx]
		skipVertex := prevSub && it.Kind == gra.PathVertex
		prevSub = it.Kind == gra.PathSub
		if skipVertex {
			continue
		}
		switch it.Kind {
		case gra.PathVertex:
			if v.Kind() != value.KindVertex {
				return nil, false
			}
			p.Vertices = append(p.Vertices, v.ID())
		case gra.PathEdge:
			if v.Kind() != value.KindEdge {
				return nil, false
			}
			p.Edges = append(p.Edges, v.ID())
		case gra.PathSub:
			if v.Kind() != value.KindPath {
				return nil, false
			}
			sp := v.Path()
			p.Edges = append(p.Edges, sp.Edges...)
			p.Vertices = append(p.Vertices, sp.Vertices[1:]...)
		}
	}
	return p, true
}

func (ev *evaluator) evalPathBuild(o *nra.PathBuild) ([]value.Row, error) {
	in, err := ev.eval(o.Input)
	if err != nil {
		return nil, err
	}
	items, err := ResolvePathItems(o.Items, o.Input.Schema())
	if err != nil {
		return nil, err
	}
	var rows []value.Row
	for _, row := range in {
		p, ok := BuildPath(row, items)
		if !ok {
			continue
		}
		out := make(value.Row, 0, len(row)+1)
		out = append(out, row...)
		out = append(out, value.NewPath(p))
		rows = append(rows, out)
	}
	return rows, nil
}

func (ev *evaluator) evalUnwind(o *nra.Unwind) ([]value.Row, error) {
	in, err := ev.eval(o.Input)
	if err != nil {
		return nil, err
	}
	fn, err := ev.compile(o.Expr, o.Input.Schema())
	if err != nil {
		return nil, err
	}
	env := &expr.Env{G: ev.g}
	var rows []value.Row
	for _, row := range in {
		env.Row = row
		v := fn(env)
		switch v.Kind() {
		case value.KindNull:
			// UNWIND null produces no rows.
		case value.KindList:
			for _, el := range v.List() {
				out := make(value.Row, 0, len(row)+1)
				out = append(out, row...)
				out = append(out, el)
				rows = append(rows, out)
			}
		default:
			out := make(value.Row, 0, len(row)+1)
			out = append(out, row...)
			out = append(out, v)
			rows = append(rows, out)
		}
	}
	return rows, nil
}

// TopCompare is the canonical ordering contract of the Top operator,
// shared with the Rete TopKNode (which must produce the identical
// window): rows order by the evaluated sort keys (with per-item
// descending flags), ties break by the canonical row comparison, and
// remaining ties — distinct rows that still compare equal, e.g. the
// openCypher-equal 2 and 2.0 — by the rows' canonical binary keys.
// The order is total over distinct rows, which is what makes windows
// deterministic across per-op, batched and parallel propagation.
func TopCompare(aKeys, bKeys value.Row, desc []bool, aRow, bRow value.Row) int {
	for k := range desc {
		c := value.Compare(aKeys[k], bKeys[k])
		if desc[k] {
			c = -c
		}
		if c != 0 {
			return c
		}
	}
	if c := value.CompareRows(aRow, bRow); c != 0 {
		return c
	}
	return strings.Compare(value.RowKey(aRow), value.RowKey(bRow))
}

// EvalConstN evaluates a SKIP/LIMIT expression (constant: literals and
// parameters only) to a non-negative int. Shared with the Rete builder.
func EvalConstN(e cypher.Expr, params map[string]value.Value, what string) (int, error) {
	fn, err := expr.Compile(e, schema.Schema{}, params)
	if err != nil {
		return 0, err
	}
	nv := fn(&expr.Env{Row: value.Row{}})
	if nv.Kind() != value.KindInt || nv.Int() < 0 {
		return 0, fmt.Errorf("%s requires a non-negative integer, got %s", what, nv)
	}
	return int(nv.Int()), nil
}

// evalTop orders the input by the sort items (deterministic tie-break,
// see TopCompare) and keeps the [skip, skip+limit) window. Without sort
// items the canonical row order applies, so SKIP/LIMIT alone are
// deterministic too.
func (ev *evaluator) evalTop(o *nra.Top) ([]value.Row, error) {
	in, err := ev.eval(o.Input)
	if err != nil {
		return nil, err
	}
	fns := make([]expr.Fn, len(o.Items))
	desc := make([]bool, len(o.Items))
	for i, it := range o.Items {
		fn, err := ev.compile(it.Expr, o.Input.Schema())
		if err != nil {
			return nil, err
		}
		fns[i] = fn
		desc[i] = it.Desc
	}
	type keyed struct {
		row  value.Row
		keys value.Row
	}
	ks := make([]keyed, len(in))
	env := &expr.Env{G: ev.g}
	for i, row := range in {
		env.Row = row
		keys := make(value.Row, len(fns))
		for j, fn := range fns {
			keys[j] = fn(env)
		}
		ks[i] = keyed{row: row, keys: keys}
	}
	sort.Slice(ks, func(i, j int) bool {
		return TopCompare(ks[i].keys, ks[j].keys, desc, ks[i].row, ks[j].row) < 0
	})
	rows := make([]value.Row, len(ks))
	for i, k := range ks {
		rows[i] = k.row
	}
	skip := 0
	if o.Skip != nil {
		if skip, err = EvalConstN(o.Skip, ev.params, "snapshot: SKIP"); err != nil {
			return nil, err
		}
	}
	if skip >= len(rows) {
		return nil, nil
	}
	rows = rows[skip:]
	if o.Limit != nil {
		limit, err := EvalConstN(o.Limit, ev.params, "snapshot: LIMIT")
		if err != nil {
			return nil, err
		}
		if limit < len(rows) {
			rows = rows[:limit]
		}
	}
	return rows, nil
}
