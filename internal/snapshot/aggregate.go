package snapshot

import (
	"fmt"
	"sort"

	"pgiv/internal/expr"
	"pgiv/internal/nra"
	"pgiv/internal/value"
)

// FinalizeAgg computes the result of one aggregation function from the
// multiset of collected (non-null) argument values; star selects the
// count(*) semantics, which counts raw rows (rowCount) instead. Shared
// with the Rete aggregation node so both engines agree on edge cases:
//
//	count(*)  → number of rows
//	count(x)  → number of non-null values
//	sum       → 0 for the empty multiset; integer if all inputs integer
//	avg       → null for the empty multiset
//	min/max   → null for the empty multiset
//	collect   → values in canonical (sorted) order; bags are unordered, so
//	            an implementation-defined deterministic order is chosen
func FinalizeAgg(fn string, star bool, vals []value.Value, rowCount int64) (value.Value, error) {
	switch fn {
	case "count":
		if star {
			return value.NewInt(rowCount), nil
		}
		return value.NewInt(int64(len(vals))), nil
	case "sum":
		var isum int64
		var fsum float64
		sawFloat := false
		for _, v := range vals {
			switch v.Kind() {
			case value.KindInt:
				isum += v.Int()
			case value.KindFloat:
				sawFloat = true
				fsum += v.Float()
			}
		}
		if sawFloat {
			return value.NewFloat(fsum + float64(isum)), nil
		}
		return value.NewInt(isum), nil
	case "avg":
		if len(vals) == 0 {
			return value.Null, nil
		}
		var sum float64
		n := 0
		for _, v := range vals {
			if v.IsNumeric() {
				sum += v.AsFloat()
				n++
			}
		}
		if n == 0 {
			return value.Null, nil
		}
		return value.NewFloat(sum / float64(n)), nil
	case "min":
		if len(vals) == 0 {
			return value.Null, nil
		}
		best := vals[0]
		for _, v := range vals[1:] {
			if value.Compare(v, best) < 0 {
				best = v
			}
		}
		return best, nil
	case "max":
		if len(vals) == 0 {
			return value.Null, nil
		}
		best := vals[0]
		for _, v := range vals[1:] {
			if value.Compare(v, best) > 0 {
				best = v
			}
		}
		return best, nil
	case "collect":
		sorted := make([]value.Value, len(vals))
		copy(sorted, vals)
		sort.Slice(sorted, func(i, j int) bool { return value.Compare(sorted[i], sorted[j]) < 0 })
		return value.NewList(sorted), nil
	}
	return value.Null, fmt.Errorf("snapshot: unknown aggregate %q", fn)
}

func (ev *evaluator) evalAggregate(o *nra.Aggregate) ([]value.Row, error) {
	in, err := ev.eval(o.Input)
	if err != nil {
		return nil, err
	}
	inSchema := o.Input.Schema()
	groupFns := make([]expr.Fn, len(o.GroupBy))
	for i, it := range o.GroupBy {
		fn, err := ev.compile(it.Expr, inSchema)
		if err != nil {
			return nil, err
		}
		groupFns[i] = fn
	}
	argFns := make([]expr.Fn, len(o.Aggs))
	for i, a := range o.Aggs {
		if a.Arg == nil {
			continue
		}
		fn, err := ev.compile(a.Arg, inSchema)
		if err != nil {
			return nil, err
		}
		argFns[i] = fn
	}

	type groupState struct {
		keys     value.Row
		rowCount int64
		vals     [][]value.Value   // per aggregate, collected non-null values
		seen     []map[string]bool // per aggregate, for DISTINCT
	}
	groups := make(map[string]*groupState)
	var order []string // deterministic output order by first appearance

	env := &expr.Env{G: ev.g}
	for _, row := range in {
		env.Row = row
		keys := make(value.Row, len(groupFns))
		for i, fn := range groupFns {
			keys[i] = fn(env)
		}
		k := value.RowKey(keys)
		gs := groups[k]
		if gs == nil {
			gs = &groupState{
				keys: keys,
				vals: make([][]value.Value, len(o.Aggs)),
				seen: make([]map[string]bool, len(o.Aggs)),
			}
			for i, a := range o.Aggs {
				if a.Distinct {
					gs.seen[i] = make(map[string]bool)
				}
			}
			groups[k] = gs
			order = append(order, k)
		}
		gs.rowCount++
		for i, a := range o.Aggs {
			if a.Arg == nil {
				continue // count(*): rowCount suffices
			}
			v := argFns[i](env)
			if v.IsNull() {
				continue
			}
			if a.Distinct {
				vk := value.Key(v)
				if gs.seen[i][vk] {
					continue
				}
				gs.seen[i][vk] = true
			}
			gs.vals[i] = append(gs.vals[i], v)
		}
	}

	// A global aggregate (no group keys) over an empty input yields one
	// row of default values.
	if len(groups) == 0 && len(o.GroupBy) == 0 {
		gs := &groupState{vals: make([][]value.Value, len(o.Aggs))}
		groups[""] = gs
		order = append(order, "")
	}

	var rows []value.Row
	for _, k := range order {
		gs := groups[k]
		out := make(value.Row, 0, len(gs.keys)+len(o.Aggs))
		out = append(out, gs.keys...)
		for i, a := range o.Aggs {
			v, err := FinalizeAgg(a.Func, a.Arg == nil, gs.vals[i], gs.rowCount)
			if err != nil {
				return nil, err
			}
			out = append(out, v)
		}
		rows = append(rows, out)
	}
	return rows, nil
}
