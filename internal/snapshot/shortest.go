package snapshot

import (
	"fmt"
	"math"
	"sort"

	"pgiv/internal/cypher"
	"pgiv/internal/expr"
	"pgiv/internal/gra"
	"pgiv/internal/graph"
	"pgiv/internal/nra"
	"pgiv/internal/schema"
	"pgiv/internal/value"
)

// EdgePredVal is a resolved interior-edge predicate: a traversed edge e is
// usable only if e.Key equals Val. A null property (or a null predicate
// value) never matches, per Cypher's null-rejecting comparison semantics.
type EdgePredVal struct {
	Key string
	Val value.Value
}

// ShortestPathSpec describes one shortest-path traversal. It is shared
// between the snapshot evaluator and the Rete shortest-path node (package
// rete) so the two produce byte-identical fragments.
type ShortestPathSpec struct {
	Types      []string
	Dir        cypher.Direction
	Min, Max   int // hops; Max == -1 means unbounded
	DstLabels  []string
	WeightProp string // "" = unweighted (hop-count cost)
	EdgePreds  []EdgePredVal
}

// ResolveEdgePreds evaluates the constant predicate expressions of a
// ShortestPath operator once, at plan-build time.
func ResolveEdgePreds(preds []gra.EdgePred, params map[string]value.Value) ([]EdgePredVal, error) {
	if len(preds) == 0 {
		return nil, nil
	}
	out := make([]EdgePredVal, 0, len(preds))
	for _, p := range preds {
		fn, err := expr.Compile(p.Expr, schema.Schema{}, params)
		if err != nil {
			return nil, err
		}
		out = append(out, EdgePredVal{Key: p.Key, Val: fn(&expr.Env{Row: value.Row{}})})
	}
	return out, nil
}

// EdgeUsable reports whether a traversal under this spec may cross e, and
// the edge's cost contribution if so. Unusable edges are those failing an
// EdgePred, or — when the spec is weighted — those whose weight property
// is missing, non-numeric, NaN or negative (our dialect excludes such
// edges rather than poisoning the path sum). Unweighted traversals charge
// every usable edge 1, so the cost sum is the hop count.
func (s *ShortestPathSpec) EdgeUsable(e *graph.Edge) (float64, bool) {
	for _, p := range s.EdgePreds {
		pv := e.Prop(p.Key)
		if pv.Kind() == value.KindNull || !value.Equal(pv, p.Val) {
			return 0, false
		}
	}
	if s.WeightProp == "" {
		return 1, true
	}
	wv := e.Prop(s.WeightProp)
	if !wv.IsNumeric() {
		return 0, false
	}
	w := wv.AsFloat()
	if math.IsNaN(w) || w < 0 {
		return 0, false
	}
	return w, true
}

// CostValue renders a path cost as the operator's output value: the float
// weight sum when weighted, the integer hop count otherwise.
func (s *ShortestPathSpec) CostValue(sum float64, hops int) value.Value {
	if s.WeightProp == "" {
		return value.NewInt(int64(hops))
	}
	return value.NewFloat(sum)
}

// spBest tracks the per-destination champion during enumeration. The
// canonical key — the final tie-break — is computed lazily: most
// candidates lose on (cost, hops) alone, and rendering a path key per
// DFS step would dominate the enumeration.
type spBest struct {
	cost float64
	hops int
	key  string // canonical key of the path value; "" = not yet rendered
	path *value.Path
	dst  *graph.Vertex
}

// ShortestPathEnum finds, for every vertex reachable from src over an
// edge-distinct trail of spec.Min..spec.Max usable edges that ends at a
// vertex carrying spec.DstLabels, the cheapest such trail — ties broken by
// hop count, then by the path's canonical key — and invokes emit once per
// destination in ascending destination-ID order. With spec.Min == 0 a
// matching source emits the zero-length path at cost 0. The enumeration
// is an exhaustive trail DFS (not Dijkstra) because the hop window
// [Min, Max] makes prefix-optimality fail: the cheapest trail to an
// intermediate vertex may be unable to reach the window. The DFS walks a
// single mutable vertex/edge buffer and copies it into an immutable Path
// only when a candidate actually takes (or founds) a championship.
func ShortestPathEnum(g graph.Reader, src graph.ID, spec *ShortestPathSpec, emit func(p *value.Path, dst *graph.Vertex, cost value.Value)) {
	srcV, ok := g.VertexByID(src)
	if !ok {
		return
	}
	vbuf := []int64{int64(src)}
	var ebuf []int64
	snapPath := func() *value.Path {
		return &value.Path{
			Vertices: append([]int64(nil), vbuf...),
			Edges:    append([]int64(nil), ebuf...),
		}
	}
	best := make(map[graph.ID]*spBest)
	consider := func(dst *graph.Vertex, cost float64) {
		hops := len(ebuf)
		b := best[dst.ID]
		if b == nil {
			best[dst.ID] = &spBest{cost: cost, hops: hops, path: snapPath(), dst: dst}
			return
		}
		if cost > b.cost || (cost == b.cost && hops > b.hops) {
			return
		}
		if cost < b.cost || hops < b.hops {
			b.cost, b.hops, b.path, b.key = cost, hops, snapPath(), ""
			return
		}
		// Exact (cost, hops) tie: fall back to the canonical key. The
		// candidate's key renders through a transient Path header over the
		// live buffers — no copy unless it wins.
		ck := value.Key(value.NewPath(&value.Path{Vertices: vbuf, Edges: ebuf}))
		if b.key == "" {
			b.key = value.Key(value.NewPath(b.path))
		}
		if ck < b.key {
			b.path, b.key = snapPath(), ck
		}
	}
	if spec.Min == 0 && vertexMatches(srcV, spec.DstLabels) {
		consider(srcV, 0)
	}
	used := make(map[graph.ID]bool)
	var dfs func(cur graph.ID, sum float64)
	dfs = func(cur graph.ID, sum float64) {
		if spec.Max != -1 && len(ebuf) >= spec.Max {
			return
		}
		forEachExpansionStep(g, cur, spec.Types, spec.Dir, func(edge, nextID graph.ID) {
			if used[edge] {
				return
			}
			e, ok := g.EdgeByID(edge)
			if !ok {
				return
			}
			w, usable := spec.EdgeUsable(e)
			if !usable {
				return
			}
			next, ok := g.VertexByID(nextID)
			if !ok {
				return
			}
			ebuf = append(ebuf, int64(edge))
			vbuf = append(vbuf, int64(nextID))
			ns := sum + w
			if len(ebuf) >= spec.Min && vertexMatches(next, spec.DstLabels) {
				consider(next, ns)
			}
			used[edge] = true
			dfs(nextID, ns)
			used[edge] = false
			ebuf = ebuf[:len(ebuf)-1]
			vbuf = vbuf[:len(vbuf)-1]
		})
	}
	dfs(src, 0)
	ids := make([]graph.ID, 0, len(best))
	for id := range best {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		b := best[id]
		emit(b.path, b.dst, spec.CostValue(b.cost, b.hops))
	}
}

func (ev *evaluator) evalShortestPath(o *nra.ShortestPath) ([]value.Row, error) {
	in, err := ev.eval(o.Input)
	if err != nil {
		return nil, err
	}
	srcIdx := o.Input.Schema().Index(o.SrcAttr)
	if srcIdx < 0 {
		return nil, fmt.Errorf("snapshot: shortest path source %q not in input schema", o.SrcAttr)
	}
	preds, err := ResolveEdgePreds(o.EdgePreds, ev.params)
	if err != nil {
		return nil, err
	}
	spec := &ShortestPathSpec{
		Types: o.Types, Dir: o.Dir, Min: o.Min, Max: o.Max,
		DstLabels: o.DstLabels, WeightProp: o.WeightProp, EdgePreds: preds,
	}
	var rows []value.Row
	for _, row := range in {
		srcVal := row[srcIdx]
		if srcVal.Kind() != value.KindVertex {
			continue
		}
		ShortestPathEnum(ev.g, srcVal.ID(), spec, func(p *value.Path, dst *graph.Vertex, cost value.Value) {
			out := make(value.Row, 0, len(row)+3+len(o.DstProps))
			out = append(out, row...)
			out = append(out, value.NewVertex(dst.ID))
			if o.PathAttr != "" {
				out = append(out, value.NewPath(p))
			}
			if o.CostAttr != "" {
				out = append(out, cost)
			}
			for _, ps := range o.DstProps {
				out = append(out, dst.Prop(ps.Key))
			}
			rows = append(rows, out)
		})
	}
	return rows, nil
}
