// Tests for the delta hot path work: propagation-mode determinism (the
// same operation stream must yield byte-identical views whether commits
// propagate per-op, batched, or across the parallel worker pool) and
// allocation regression pins for the two hottest update paths.
package pgiv

import (
	"fmt"
	"testing"

	"pgiv/internal/expr"
	"pgiv/internal/rete"
	"pgiv/internal/value"
	"pgiv/internal/workload"
)

// TestPropagationModeDeterminism drives the identical social operation
// stream (load + churn) through three engines — per-op sequential,
// batched sequential, and per-op parallel with four workers — and
// asserts every view of the battery materialises byte-identical rows.
// The parallel scheduler may interleave per-view work arbitrarily, but
// each view's subtree is single-threaded per commit, so the final
// contents must not depend on the mode.
func TestPropagationModeDeterminism(t *testing.T) {
	cfg := workload.SocialConfig{
		Persons: 30, PostsPerPerson: 3, RepliesPerPost: 5,
		KnowsPerPerson: 4, LikesPerPerson: 3,
		Langs: []string{"en", "de"}, Seed: 7,
	}
	run := func(opts EngineOptions, batched bool) map[string][]Row {
		soc := workload.NewSocial(cfg)
		engine := NewEngineWithOptions(soc.G, opts)
		defer engine.Close()
		views := make(map[string]*View)
		for name, q := range workload.SocialQueries {
			views[name] = mustRegisterT(t, engine, name, q)
		}
		if batched {
			soc.Load()
			soc.ChurnBatch(200)
		} else {
			soc.LoadPerOp()
			soc.Churn(200)
		}
		out := make(map[string][]Row)
		for name, v := range views {
			out[name] = v.Rows()
		}
		return out
	}
	perOp := run(EngineOptions{NumWorkers: 1}, false)
	batched := run(EngineOptions{NumWorkers: 1}, true)
	parallel := run(EngineOptions{NumWorkers: 4}, false)

	assertSameRows := func(mode string, got map[string][]Row) {
		t.Helper()
		for name, want := range perOp {
			rows := got[name]
			if len(rows) != len(want) {
				t.Fatalf("%s: view %s has %d rows, per-op sequential has %d", mode, name, len(rows), len(want))
			}
			for i := range rows {
				if string(value.RowKey(rows[i])) != string(value.RowKey(want[i])) {
					t.Fatalf("%s: view %s row %d: %v, per-op sequential %v", mode, name, i, rows[i], want[i])
				}
			}
		}
	}
	assertSameRows("batched", batched)
	assertSameRows("parallel(4)", parallel)
}

// TestOnChangeOncePerCommitParallel asserts the parallel scheduler fires
// each view's OnChange exactly once per effective commit.
func TestOnChangeOncePerCommitParallel(t *testing.T) {
	g := NewGraph()
	engine := NewEngineWithOptions(g, EngineOptions{NumWorkers: 4})
	defer engine.Close()
	post := g.AddVertex([]string{"Post"}, Props{"lang": Str("en")})
	comm := g.AddVertex([]string{"Comm"}, Props{"lang": Str("en")})
	if _, err := g.AddEdge(post, comm, "REPLY", nil); err != nil {
		t.Fatal(err)
	}
	const q = "MATCH (p:Post)-[:REPLY]->(c:Comm) WHERE p.lang = c.lang RETURN p, c"
	fires := make([]int, 2)
	for i := 0; i < 2; i++ {
		i := i
		v := mustRegisterT(t, engine, fmt.Sprintf("v%d", i), q)
		v.OnChange(func([]Delta) { fires[i]++ })
	}
	for flip := 0; flip < 5; flip++ {
		lang := Str("de")
		if flip%2 == 1 {
			lang = Str("en")
		}
		if err := g.SetVertexProperty(comm, "lang", lang); err != nil {
			t.Fatal(err)
		}
	}
	for i, n := range fires {
		if n != 5 {
			t.Fatalf("view %d OnChange fired %d times, want 5", i, n)
		}
	}
}

// Allocation regression pins. The ceilings hold the two hottest delta
// paths at their post-optimisation allocation counts (scratch-buffer key
// encoding, typed adjacency, pooled emit buffers) with ~25%% headroom;
// an accidental reintroduction of per-call key strings or adjacency
// copies trips them. Both pin the sequential engine so the counts are
// scheduler-independent.

// TestJoinProbeAllocs pins the join-probe path: churning a KNOWS edge
// through a two-hop join view (two indexed memories probed per delta).
func TestJoinProbeAllocs(t *testing.T) {
	soc := workload.GenerateSocial(workload.DefaultSocialConfig(1))
	engine := NewEngineWithOptions(soc.G, EngineOptions{NumWorkers: 1})
	defer engine.Close()
	mustRegisterT(t, engine, "two-hop",
		"MATCH (a:Person)-[:KNOWS]->(b:Person)-[:KNOWS]->(c:Person) RETURN a, c")
	a, b := soc.Persons[0], soc.Persons[1]
	avg := testing.AllocsPerRun(200, func() {
		id, err := soc.G.AddEdge(a, b, "KNOWS", nil)
		if err != nil {
			t.Fatal(err)
		}
		if err := soc.G.RemoveEdge(id); err != nil {
			t.Fatal(err)
		}
	})
	const ceiling = 65 // measured ~51 at PR time
	if avg > ceiling {
		t.Errorf("join-probe edge churn: %.1f allocs/op, ceiling %d", avg, ceiling)
	}
}

// TestSingleEdgeUpdateAllocs pins the single-edge-update path of the
// transitive node: deleting and re-inserting the tail edge of a reply
// chain under the paper's path view.
func TestSingleEdgeUpdateAllocs(t *testing.T) {
	g := NewGraph()
	ids := []ID{g.AddVertex([]string{"Post"}, Props{"lang": Str("en")})}
	var eids []ID
	for i := 0; i < 16; i++ {
		c := g.AddVertex([]string{"Comm"}, Props{"lang": Str("en")})
		e, err := g.AddEdge(ids[len(ids)-1], c, "REPLY", nil)
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, c)
		eids = append(eids, e)
	}
	engine := NewEngineWithOptions(g, EngineOptions{NumWorkers: 1})
	defer engine.Close()
	mustRegisterT(t, engine,
		"threads", "MATCH t = (p:Post)-[:REPLY*]->(c:Comm) WHERE p.lang = c.lang RETURN p, t")
	last := eids[len(eids)-1]
	src, dst := ids[len(ids)-2], ids[len(ids)-1]
	avg := testing.AllocsPerRun(200, func() {
		if err := g.RemoveEdge(last); err != nil {
			t.Fatal(err)
		}
		var err error
		last, err = g.AddEdge(src, dst, "REPLY", nil)
		if err != nil {
			t.Fatal(err)
		}
	})
	const ceiling = 170 // measured ~136 at PR time
	if avg > ceiling {
		t.Errorf("transitive tail-edge churn: %.1f allocs/op, ceiling %d", avg, ceiling)
	}
}

// TestTopKRankShiftAllocs pins the TopKNode hot path: multiplicity
// shifts on rows already inside the window — the order-statistic
// search, the width updates and the window merge-diff — must not
// allocate per probe. Every row keeps a positive count throughout, so
// no entry is created or dropped and the steady state must be
// allocation-free.
func TestTopKRankShiftAllocs(t *testing.T) {
	keyFn := []expr.Fn{func(env *expr.Env) value.Value { return env.Row[1] }}
	n := rete.NewTopKNode(nil, keyFn, []bool{true}, 2, 8)
	mkRow := func(i int) value.Row {
		return value.Row{value.NewString(fmt.Sprintf("p%02d", i)), value.NewInt(int64(i % 5))}
	}
	// 20 distinct rows, multiplicity 2 each: the window boundary sits
	// inside tied runs, and counts oscillating 1..3 never hit zero.
	var seedBatch []rete.Delta
	for i := 0; i < 20; i++ {
		seedBatch = append(seedBatch, rete.Delta{Row: mkRow(i), Mult: 2})
	}
	n.Apply(0, seedBatch)

	i := 0
	up := []rete.Delta{{}, {}}
	down := []rete.Delta{{}, {}}
	avg := testing.AllocsPerRun(500, func() {
		a, b := mkRow(i%20), mkRow((i+7)%20)
		up[0] = rete.Delta{Row: a, Mult: 1}
		up[1] = rete.Delta{Row: b, Mult: -1}
		n.Apply(0, up)
		down[0] = rete.Delta{Row: a, Mult: -1}
		down[1] = rete.Delta{Row: b, Mult: 1}
		n.Apply(0, down)
		i++
	})
	// mkRow allocates the probe rows (4 allocs: two rows, two strings);
	// the node itself must add nothing.
	const ceiling = 6
	if avg > ceiling {
		t.Errorf("TopK in-window rank shift: %.1f allocs/op, ceiling %d", avg, ceiling)
	}
}
