// Command trainbench sweeps the Train Benchmark scenario across model
// scales and prints the EXP-B table: per-transformation revalidation
// latency, incremental vs full recomputation, for the six standard
// well-formedness constraints.
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	"pgiv"
	"pgiv/internal/workload"
)

func main() {
	maxScale := flag.Int("max-scale", 8, "largest scale factor (doubling sweep from 1)")
	ops := flag.Int("ops", 120, "transformations per measurement")
	flag.Parse()

	fmt.Printf("%-8s %10s %10s %16s %16s %9s\n",
		"scale", "vertices", "edges", "incremental/op", "recompute/op", "speedup")
	for scale := 1; scale <= *maxScale; scale *= 2 {
		inc, vtx, edg := measure(scale, *ops, true)
		snapOps := *ops / 20
		if snapOps < 3 {
			snapOps = 3
		}
		snap, _, _ := measure(scale, snapOps, false)
		fmt.Printf("%-8d %10d %10d %16v %16v %8.1fx\n",
			scale, vtx, edg, inc.Round(time.Nanosecond), snap.Round(time.Nanosecond),
			float64(snap)/float64(inc))
	}
}

func measure(scale, ops int, incremental bool) (time.Duration, int, int) {
	train := workload.GenerateTrain(workload.DefaultTrainConfig(scale))
	if incremental {
		engine := pgiv.NewEngine(train.G)
		for name, q := range workload.TrainQueries {
			if _, err := engine.RegisterView(name, q); err != nil {
				log.Fatal(err)
			}
		}
	}
	start := time.Now()
	for i := 0; i < ops; i++ {
		train.InjectRepairMix(1)
		if !incremental {
			for _, q := range workload.TrainQueries {
				if _, err := pgiv.Snapshot(train.G, q); err != nil {
					log.Fatal(err)
				}
			}
		}
	}
	per := time.Since(start) / time.Duration(ops)
	return per, train.G.NumVertices(), train.G.NumEdges()
}
