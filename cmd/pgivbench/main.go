// Command pgivbench runs the experiment suite of DESIGN.md
// (EXP-A..EXP-S) and prints one table per experiment; EXPERIMENTS.md
// embeds its output. With -json <path> it additionally writes every
// recorded figure as machine-readable JSON — the perf trajectory files
// (BENCH_*.json) are produced this way, one per PR. With -only <letter>
// a single experiment runs (e.g. -only P for the CI concurrency smoke).
//
// Unlike `go test -bench`, which reports single ns/op figures, this tool
// prints the paper-style comparison tables: incremental maintenance vs
// full recomputation across workload scales, with speedups, allocation
// counts and memory figures.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"math"
	"math/rand"
	"os"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"path/filepath"

	"pgiv"
	"pgiv/client"
	"pgiv/internal/cypher"
	"pgiv/internal/graph"
	"pgiv/internal/ivm"
	"pgiv/internal/server"
	"pgiv/internal/snapshot"
	"pgiv/internal/wal"
	"pgiv/internal/workload"
	"pgiv/internal/write"
)

var (
	quick    = flag.Bool("quick", false, "smaller iteration counts")
	jsonPath = flag.String("json", "", "write machine-readable results to this path")
	only     = flag.String("only", "", "run a single experiment by letter (A..S)")
)

// benchResult is one recorded figure set of one experiment.
type benchResult struct {
	Exp     string             `json:"exp"`
	Name    string             `json:"name"`
	Metrics map[string]float64 `json:"metrics"`
}

// benchReport is the top-level -json document.
type benchReport struct {
	Tool       string        `json:"tool"`
	Quick      bool          `json:"quick"`
	GoMaxProcs int           `json:"gomaxprocs"`
	Results    []benchResult `json:"results"`
}

var results []benchResult

// record stores one experiment figure set for the -json report.
func record(exp, name string, metrics map[string]float64) {
	results = append(results, benchResult{Exp: exp, Name: name, Metrics: metrics})
}

func main() {
	flag.Parse()
	exps := []struct {
		letter string
		fn     func()
	}{
		{"A", expA}, {"B", expB}, {"C", expC}, {"D", expD}, {"E", expE},
		{"F", expF}, {"G", expG}, {"H", expH}, {"I", expI}, {"J", expJ},
		{"K", expK}, {"L", expL}, {"M", expM}, {"N", expN}, {"O", expO},
		{"P", expP}, {"Q", expQ}, {"R", expR}, {"S", expS},
	}
	ran := false
	for _, e := range exps {
		if *only == "" || *only == e.letter {
			e.fn()
			ran = true
		}
	}
	if !ran {
		log.Fatalf("unknown experiment %q (want A..S)", *only)
	}
	if *jsonPath != "" {
		report := benchReport{
			Tool: "pgivbench", Quick: *quick,
			GoMaxProcs: runtime.GOMAXPROCS(0), Results: results,
		}
		data, err := json.MarshalIndent(report, "", "  ")
		if err != nil {
			log.Fatal(err)
		}
		data = append(data, '\n')
		if err := os.WriteFile(*jsonPath, data, 0o644); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\nwrote %d results to %s\n", len(results), *jsonPath)
	}
}

func iters(n int) int {
	if *quick {
		return n / 10
	}
	return n
}

// timeOp measures the mean wall time of fn over n runs.
func timeOp(n int, fn func()) time.Duration {
	start := time.Now()
	for i := 0; i < n; i++ {
		fn()
	}
	return time.Since(start) / time.Duration(n)
}

const paperQuery = "MATCH t = (p:Post)-[:REPLY*]->(c:Comm) WHERE p.lang = c.lang RETURN p, t"

func header(id, title string) {
	fmt.Printf("\n== %s: %s ==\n", id, title)
}

func expA() {
	header("EXP-A", "running example (Section 2), language flip per update")
	g := pgiv.NewGraph()
	post := g.AddVertex([]string{"Post"}, pgiv.Props{"lang": pgiv.Str("en")})
	c2 := g.AddVertex([]string{"Comm"}, pgiv.Props{"lang": pgiv.Str("en")})
	c3 := g.AddVertex([]string{"Comm"}, pgiv.Props{"lang": pgiv.Str("en")})
	mustEdge(g, post, c2)
	mustEdge(g, c2, c3)
	engine := pgiv.NewEngine(g)
	view, err := engine.RegisterView("threads", paperQuery)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("view rows on the paper's graph: %d (expected 2)\n", view.DistinctCount())
	n := iters(20000)
	langs := []pgiv.Value{pgiv.Str("de"), pgiv.Str("en")}
	i := 0
	inc := timeOp(n, func() {
		_ = g.SetVertexProperty(c3, "lang", langs[i%2])
		i++
	})
	i = 0
	snap := timeOp(n/10, func() {
		_ = g.SetVertexProperty(c3, "lang", langs[i%2])
		_, _ = pgiv.Snapshot(g, paperQuery)
		i++
	})
	printCmp("per language flip", inc, snap)
	record("EXP-A", "language-flip", map[string]float64{
		"incremental_ns": float64(inc), "snapshot_ns": float64(snap),
		"speedup": float64(snap) / float64(inc),
	})
}

func printCmp(what string, inc, snap time.Duration) {
	fmt.Printf("%-28s incremental %10v   recompute %10v   speedup %6.1fx\n",
		what, inc.Round(time.Nanosecond), snap.Round(time.Nanosecond), float64(snap)/float64(inc))
}

func mustEdge(g *pgiv.Graph, a, b pgiv.ID) pgiv.ID {
	id, err := g.AddEdge(a, b, "REPLY", nil)
	if err != nil {
		log.Fatal(err)
	}
	return id
}

func expB() {
	header("EXP-B", "Train Benchmark continuous validation (6 constraints per transformation)")
	fmt.Printf("%-8s %10s %10s %14s %14s %9s\n", "scale", "vertices", "edges", "incremental", "recompute", "speedup")
	for _, scale := range []int{1, 2, 4, 8} {
		train := workload.GenerateTrain(workload.DefaultTrainConfig(scale))
		engine := pgiv.NewEngine(train.G)
		for name, q := range workload.TrainQueries {
			if _, err := engine.RegisterView(name, q); err != nil {
				log.Fatal(err)
			}
		}
		n := iters(2000) / scale
		if n < 10 {
			n = 10
		}
		inc := timeOp(n, func() { train.InjectRepairMix(1) })

		train2 := workload.GenerateTrain(workload.DefaultTrainConfig(scale))
		m := n / 20
		if m < 3 {
			m = 3
		}
		snap := timeOp(m, func() {
			train2.InjectRepairMix(1)
			for _, q := range workload.TrainQueries {
				_, _ = pgiv.Snapshot(train2.G, q)
			}
		})
		fmt.Printf("%-8d %10d %10d %14v %14v %8.1fx\n",
			scale, train.G.NumVertices(), train.G.NumEdges(),
			inc.Round(time.Nanosecond), snap.Round(time.Nanosecond),
			float64(snap)/float64(inc))
		record("EXP-B", fmt.Sprintf("scale-%d", scale), map[string]float64{
			"vertices": float64(train.G.NumVertices()), "edges": float64(train.G.NumEdges()),
			"incremental_ns": float64(inc), "snapshot_ns": float64(snap),
			"speedup": float64(snap) / float64(inc),
		})
	}
}

func expC() {
	header("EXP-C", "transitive path maintenance: edge churn at the end of a reply chain")
	fmt.Printf("%-8s %14s %14s %9s\n", "depth", "incremental", "recompute", "speedup")
	for _, depth := range []int{4, 8, 16, 32, 64} {
		inc := chainChurn(depth, true)
		snap := chainChurn(depth, false)
		fmt.Printf("%-8d %14v %14v %8.1fx\n", depth,
			inc.Round(time.Nanosecond), snap.Round(time.Nanosecond),
			float64(snap)/float64(inc))
		record("EXP-C", fmt.Sprintf("depth-%d", depth), map[string]float64{
			"incremental_ns": float64(inc), "snapshot_ns": float64(snap),
			"speedup": float64(snap) / float64(inc),
		})
	}
}

func chainChurn(depth int, incremental bool) time.Duration {
	g := pgiv.NewGraph()
	ids := []pgiv.ID{g.AddVertex([]string{"Post"}, pgiv.Props{"lang": pgiv.Str("en")})}
	var eids []pgiv.ID
	for i := 0; i < depth; i++ {
		c := g.AddVertex([]string{"Comm"}, pgiv.Props{"lang": pgiv.Str("en")})
		eids = append(eids, mustEdge(g, ids[len(ids)-1], c))
		ids = append(ids, c)
	}
	if incremental {
		engine := pgiv.NewEngine(g)
		if _, err := engine.RegisterView("threads", paperQuery); err != nil {
			log.Fatal(err)
		}
	}
	last := eids[len(eids)-1]
	src, dst := ids[len(ids)-2], ids[len(ids)-1]
	n := iters(2000)
	if !incremental {
		n /= 10
	}
	if n < 5 {
		n = 5
	}
	return timeOp(n, func() {
		_ = g.RemoveEdge(last)
		last = mustEdge(g, src, dst)
		if !incremental {
			_, _ = pgiv.Snapshot(g, paperQuery)
		}
	})
}

func expD() {
	header("EXP-D", "FGN: one property flip under the social view battery")
	soc := workload.GenerateSocial(workload.DefaultSocialConfig(1))
	engine := pgiv.NewEngine(soc.G)
	for name, q := range workload.SocialQueries {
		if _, err := engine.RegisterView(name, q); err != nil {
			log.Fatal(err)
		}
	}
	inc := timeOp(iters(3000), func() { soc.FlipLanguage() })
	soc2 := workload.GenerateSocial(workload.DefaultSocialConfig(1))
	snap := timeOp(iters(100), func() {
		soc2.FlipLanguage()
		for _, q := range workload.SocialQueries {
			_, _ = pgiv.Snapshot(soc2.G, q)
		}
	})
	printCmp("per property flip", inc, snap)
	record("EXP-D", "fgn-flip", map[string]float64{
		"incremental_ns": float64(inc), "snapshot_ns": float64(snap),
		"speedup": float64(snap) / float64(inc),
	})
}

func expE() {
	header("EXP-E", "schema inference: updates to properties outside the inferred schema")
	const width = 32
	build := func() (*pgiv.Graph, []pgiv.ID) {
		g := pgiv.NewGraph()
		var ids []pgiv.ID
		for i := 0; i < 500; i++ {
			props := pgiv.Props{}
			for w := 0; w < width; w++ {
				props[fmt.Sprintf("p%d", w)] = pgiv.Int(int64(w))
			}
			ids = append(ids, g.AddVertex([]string{"Wide"}, props))
		}
		return g, ids
	}
	q := "MATCH (w:Wide) WHERE w.p0 > 1 RETURN w, w.p0"
	g, ids := build()
	engine := pgiv.NewEngine(g)
	if _, err := engine.RegisterView("v", q); err != nil {
		log.Fatal(err)
	}
	n := iters(20000)
	i := 0
	unused := timeOp(n, func() {
		_ = g.SetVertexProperty(ids[i%len(ids)], "p31", pgiv.Int(int64(i)))
		i++
	})
	i = 0
	used := timeOp(n, func() {
		_ = g.SetVertexProperty(ids[i%len(ids)], "p0", pgiv.Int(int64(i)))
		i++
	})
	fmt.Printf("update outside inferred schema (p31): %10v per update (filtered at input)\n", unused)
	fmt.Printf("update inside inferred schema  (p0):  %10v per update (delta propagated)\n", used)
	fmt.Printf("vertices carry %d properties; the view's base operator materialises 1\n", width)
	record("EXP-E", "pushdown", map[string]float64{
		"unused_prop_ns": float64(unused), "used_prop_ns": float64(used),
	})
}

func expF() {
	header("EXP-F", "Rete input-node sharing across 16 overlapping views")
	run := func(opts pgiv.EngineOptions) (time.Duration, time.Duration) {
		soc := workload.GenerateSocial(workload.DefaultSocialConfig(1))
		engine := pgiv.NewEngineWithOptions(soc.G, opts)
		regStart := time.Now()
		for i := 0; i < 16; i++ {
			q := fmt.Sprintf("MATCH (a:Person)-[:KNOWS]->(b:Person) WHERE a.score > %d RETURN a, b", i)
			if _, err := engine.RegisterView(fmt.Sprintf("v%d", i), q); err != nil {
				log.Fatal(err)
			}
		}
		reg := time.Since(regStart)
		upd := timeOp(iters(3000), func() { soc.FlipScore() })
		return reg, upd
	}
	regS, updS := run(pgiv.EngineOptions{})
	regP, updP := run(pgiv.EngineOptions{NoSharing: true})
	fmt.Printf("%-10s %16s %16s\n", "mode", "registration", "per update")
	fmt.Printf("%-10s %16v %16v\n", "shared", regS.Round(time.Microsecond), updS.Round(time.Nanosecond))
	fmt.Printf("%-10s %16v %16v\n", "private", regP.Round(time.Microsecond), updP.Round(time.Nanosecond))
	fmt.Printf("update speedup from sharing: %.2fx\n", float64(updP)/float64(updS))
	record("EXP-F", "sharing", map[string]float64{
		"shared_update_ns": float64(updS), "private_update_ns": float64(updP),
		"speedup": float64(updP) / float64(updS),
	})
}

func expG() {
	header("EXP-G", "atomic paths (ORD): replace a middle edge of a 12-hop chain")
	inc := midChurn(12, true)
	snap := midChurn(12, false)
	printCmp("per replace transaction", inc, snap)
	record("EXP-G", "atomic-paths", map[string]float64{
		"incremental_ns": float64(inc), "snapshot_ns": float64(snap),
		"speedup": float64(snap) / float64(inc),
	})
}

func midChurn(depth int, incremental bool) time.Duration {
	g := pgiv.NewGraph()
	ids := []pgiv.ID{g.AddVertex([]string{"Post"}, pgiv.Props{"lang": pgiv.Str("en")})}
	var eids []pgiv.ID
	for i := 0; i < depth; i++ {
		c := g.AddVertex([]string{"Comm"}, pgiv.Props{"lang": pgiv.Str("en")})
		eids = append(eids, mustEdge(g, ids[len(ids)-1], c))
		ids = append(ids, c)
	}
	if incremental {
		engine := pgiv.NewEngine(g)
		if _, err := engine.RegisterView("threads", paperQuery); err != nil {
			log.Fatal(err)
		}
	}
	mid := eids[depth/2]
	src, dst := ids[depth/2], ids[depth/2+1]
	n := iters(1000)
	if !incremental {
		n /= 10
	}
	if n < 5 {
		n = 5
	}
	return timeOp(n, func() {
		_ = g.RemoveEdge(mid)
		mid = mustEdge(g, src, dst)
		if !incremental {
			_, _ = pgiv.Snapshot(g, paperQuery)
		}
	})
}

func expH() {
	header("EXP-H", "mixed churn with the full social battery registered")
	soc := workload.GenerateSocial(workload.DefaultSocialConfig(1))
	engine := pgiv.NewEngine(soc.G)
	for name, q := range workload.SocialQueries {
		if _, err := engine.RegisterView(name, q); err != nil {
			log.Fatal(err)
		}
	}
	inc := timeOp(iters(2000), func() { soc.Churn(1) })
	soc2 := workload.GenerateSocial(workload.DefaultSocialConfig(1))
	snap := timeOp(iters(50), func() {
		soc2.Churn(1)
		for _, q := range workload.SocialQueries {
			_, _ = pgiv.Snapshot(soc2.G, q)
		}
	})
	printCmp("per mixed update", inc, snap)
	record("EXP-H", "mixed-churn", map[string]float64{
		"incremental_ns": float64(inc), "snapshot_ns": float64(snap),
		"speedup": float64(snap) / float64(inc),
	})
}

func expI() {
	header("EXP-I", "memory: memoized Rete rows vs graph size (social battery)")
	fmt.Printf("%-8s %12s %12s %16s %10s\n", "scale", "vertices", "edges", "memoized rows", "ratio")
	for _, scale := range []int{1, 2, 4} {
		soc := workload.GenerateSocial(workload.DefaultSocialConfig(scale))
		engine := pgiv.NewEngine(soc.G)
		names := make([]string, 0, len(workload.SocialQueries))
		for name := range workload.SocialQueries {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			if _, err := engine.RegisterView(name, workload.SocialQueries[name]); err != nil {
				log.Fatal(err)
			}
		}
		// Engine-level figure: every distinct node counted once, so views
		// sharing subtrees are not double-counted.
		total := engine.MemoryEntries()
		elems := soc.G.NumVertices() + soc.G.NumEdges()
		fmt.Printf("%-8d %12d %12d %16d %9.2fx\n",
			scale, soc.G.NumVertices(), soc.G.NumEdges(), total, float64(total)/float64(elems))
		record("EXP-I", fmt.Sprintf("scale-%d", scale), map[string]float64{
			"graph_elems": float64(elems), "memoized_rows": float64(total),
			"ratio": float64(total) / float64(elems),
		})
	}
}

// expJScale1Batched stashes the scale-1 batched-load measurement so
// EXP-K can reference the same figure instead of re-measuring the
// identical path (a second sample would differ only by run-to-run
// noise and read as a spurious regression).
var (
	expJScale1Batched time.Duration
	expJScale1Elems   int
)

func expJ() {
	header("EXP-J", "transactional batching: loading the social workload into a live view battery")
	measure := func(scale int, batched bool) (time.Duration, int) {
		cfg := workload.DefaultSocialConfig(scale)
		// Best of three: single-shot load times are noisy (GC timing),
		// and EXP-K's batched-load regression check compares against
		// this figure.
		best := time.Duration(0)
		elems := 0
		for rep := 0; rep < 3; rep++ {
			soc := workload.NewSocial(cfg)
			engine := pgiv.NewEngine(soc.G)
			for name, q := range workload.SocialQueries {
				if _, err := engine.RegisterView(name, q); err != nil {
					log.Fatal(err)
				}
			}
			start := time.Now()
			if batched {
				soc.Load()
			} else {
				soc.LoadPerOp()
			}
			elapsed := time.Since(start)
			engine.Close()
			if best == 0 || elapsed < best {
				best = elapsed
			}
			elems = soc.G.NumVertices() + soc.G.NumEdges()
		}
		return best, elems
	}
	fmt.Printf("%-8s %10s %14s %14s %9s\n", "scale", "elements", "per-op", "batched", "speedup")
	for _, scale := range []int{1, 2, 4} {
		perOp, elems := measure(scale, false)
		batched, _ := measure(scale, true)
		if scale == 1 {
			expJScale1Batched, expJScale1Elems = batched, elems
		}
		fmt.Printf("%-8d %10d %14v %14v %8.1fx\n",
			scale, elems, perOp.Round(time.Microsecond), batched.Round(time.Microsecond),
			float64(perOp)/float64(batched))
		record("EXP-J", fmt.Sprintf("scale-%d", scale), map[string]float64{
			"elements": float64(elems), "per_op_ns": float64(perOp),
			"batched_ns": float64(batched), "speedup": float64(perOp) / float64(batched),
		})
	}
	fmt.Println("identical element streams; per-op commits one transaction per mutation,")
	fmt.Println("batched commits one transaction total (final view rows are identical)")
}

// expK quantifies the delta hot path: allocations and wall time per
// single-update on the FGN and transitive paths, the 10k-mutation
// batched load, and per-view parallel propagation (sequential vs a
// 4-worker pool) at 1/2/4/8 views over shared inputs.
func expK() {
	header("EXP-K", "delta hot path: allocations, batched load, parallel per-view propagation")

	// Single-update FGN under the full social battery. NumWorkers is
	// pinned to 1 so the recorded allocation/latency trajectory is
	// scheduler-independent (the default resolves to GOMAXPROCS and
	// would fold per-commit scheduling overhead into the figures on
	// multi-core hosts); the parallel scheduler is measured separately
	// by the multi-view rows below.
	soc := workload.GenerateSocial(workload.DefaultSocialConfig(1))
	engine := pgiv.NewEngineWithOptions(soc.G, pgiv.EngineOptions{NumWorkers: 1})
	for name, q := range workload.SocialQueries {
		if _, err := engine.RegisterView(name, q); err != nil {
			log.Fatal(err)
		}
	}
	n := iters(3000)
	fgnNs := timeOp(n, func() { soc.FlipLanguage() })
	fgnAllocs := testing.AllocsPerRun(n, func() { soc.FlipLanguage() })
	engine.Close()
	fmt.Printf("%-34s %12v %10.0f allocs/op\n", "FGN single update (battery)", fgnNs.Round(time.Nanosecond), fgnAllocs)
	record("EXP-K", "fgn-single-update", map[string]float64{
		"ns_per_op": float64(fgnNs), "allocs_per_op": fgnAllocs,
	})

	// Transitive edge flip at the end of a 16-hop chain (single view:
	// sequential regardless of NumWorkers).
	g, ids, eids := buildChain(16)
	engine2 := pgiv.NewEngine(g)
	if _, err := engine2.RegisterView("threads", paperQuery); err != nil {
		log.Fatal(err)
	}
	last := eids[len(eids)-1]
	src, dst := ids[len(ids)-2], ids[len(ids)-1]
	churn := func() {
		_ = g.RemoveEdge(last)
		last = mustEdge(g, src, dst)
	}
	tNs := timeOp(iters(2000), churn)
	tAllocs := testing.AllocsPerRun(iters(2000), churn)
	engine2.Close()
	fmt.Printf("%-34s %12v %10.0f allocs/op\n", "transitive edge flip (depth 16)", tNs.Round(time.Nanosecond), tAllocs)
	record("EXP-K", "transitive-edge-flip", map[string]float64{
		"ns_per_op": float64(tNs), "allocs_per_op": tAllocs,
	})

	// Batched 10k-mutation load into the live battery: the EXP-J
	// scale-1 batched figure from this run (one measurement, shared by
	// both tables — re-measuring the identical path would only record
	// run-to-run noise as a spurious delta).
	fmt.Printf("%-34s %12v (%d elements, = EXP-J scale-1 batched)\n",
		"batched load (battery live)", expJScale1Batched.Round(time.Microsecond), expJScale1Elems)
	record("EXP-K", "batched-load", map[string]float64{
		"total_ns": float64(expJScale1Batched),
		"elements": float64(expJScale1Elems),
	})

	// Per-view parallel propagation: one edge flip into N transitive
	// views, sequential vs 4 workers.
	fmt.Printf("%-8s %14s %14s %9s\n", "views", "sequential", "parallel(4)", "speedup")
	for _, nv := range []int{1, 2, 4, 8} {
		seq := multiViewChurn(nv, 1)
		par := multiViewChurn(nv, 4)
		fmt.Printf("%-8d %14v %14v %8.2fx\n", nv,
			seq.Round(time.Nanosecond), par.Round(time.Nanosecond), float64(seq)/float64(par))
		record("EXP-K", fmt.Sprintf("multiview-%d", nv), map[string]float64{
			"sequential_ns": float64(seq), "parallel_ns": float64(par),
			"speedup": float64(seq) / float64(par),
		})
	}
	if runtime.GOMAXPROCS(0) == 1 {
		fmt.Println("note: GOMAXPROCS=1 on this host — parallel rows measure scheduler")
		fmt.Println("overhead/overlap only; per-view fan-out needs cores to show speedup")
	}
}

// expL quantifies beta-subtree sharing (the subplan registry): 64 views
// drawn from 8 query templates, with sharing on versus NoSharing,
// against the 8-distinct-views baseline. On the single-core evaluation
// host the comparable figures are allocs per update and memoized rows —
// with sharing, both scale with the number of *distinct* subplans, not
// the number of registered views.
func expL() {
	header("EXP-L", "subplan sharing: 64 views from 8 query templates")
	const nTemplates = 8
	templateQ := func(i int) string {
		return fmt.Sprintf(
			"MATCH (a:Person)-[:KNOWS]->(b:Person)-[:KNOWS]->(c:Person) WHERE a.score > %d RETURN a, c",
			(i%nTemplates)*10)
	}
	measure := func(label string, opts pgiv.EngineOptions, nv int) (time.Duration, float64, int, int) {
		soc := workload.GenerateSocial(workload.DefaultSocialConfig(1))
		engine := pgiv.NewEngineWithOptions(soc.G, opts)
		defer engine.Close()
		regStart := time.Now()
		for i := 0; i < nv; i++ {
			if _, err := engine.RegisterView(fmt.Sprintf("v%02d", i), templateQ(i)); err != nil {
				log.Fatal(err)
			}
		}
		reg := time.Since(regStart)
		n := iters(2000)
		upd := timeOp(n, func() { soc.FlipScore() })
		allocs := testing.AllocsPerRun(n, func() { soc.FlipScore() })
		mem := engine.MemoryEntries()
		nodes := engine.NodeCount()
		fmt.Printf("%-22s %4d views %12v reg %12v/upd %8.0f allocs/op %10d rows %6d nodes\n",
			label, nv, reg.Round(time.Microsecond), upd.Round(time.Nanosecond), allocs, mem, nodes)
		record("EXP-L", label, map[string]float64{
			"views": float64(nv), "registration_ns": float64(reg),
			"update_ns": float64(upd), "allocs_per_op": allocs,
			"memory_entries": float64(mem), "nodes": float64(nodes),
		})
		return upd, allocs, mem, nodes
	}
	_, allocs8, mem8, _ := measure("baseline-8-shared", pgiv.EngineOptions{NumWorkers: 1}, nTemplates)
	_, allocsS, memS, _ := measure("sharing-64", pgiv.EngineOptions{NumWorkers: 1}, 64)
	_, allocsP, memP, _ := measure("nosharing-64", pgiv.EngineOptions{NoSharing: true, NumWorkers: 1}, 64)
	fmt.Printf("64 views vs 8 distinct: memory ×%.2f shared, ×%.2f private; allocs ×%.2f shared, ×%.2f private\n",
		float64(memS)/float64(mem8), float64(memP)/float64(mem8),
		allocsS/allocs8, allocsP/allocs8)
	record("EXP-L", "ratios", map[string]float64{
		"mem_ratio_shared":    float64(memS) / float64(mem8),
		"mem_ratio_private":   float64(memP) / float64(mem8),
		"alloc_ratio_shared":  allocsS / allocs8,
		"alloc_ratio_private": allocsP / allocs8,
	})
}

// expM measures the PR 4 operator family: the optional-match social
// battery (left outer joins and WITH horizons, two views per template)
// maintained incrementally under mixed churn — against full
// recomputation, and with subplan sharing on vs off. Padding flips are
// the hot path: KNOWS/LIKES edge churn keeps flipping left rows between
// combined and null-padded output.
func expM() {
	header("EXP-M", "optional match: left outer joins under social churn, sharing on/off")
	names := make([]string, 0, len(workload.SocialOptionalQueries))
	for name := range workload.SocialOptionalQueries {
		names = append(names, name)
	}
	sort.Strings(names)

	run := func(label string, opts pgiv.EngineOptions) time.Duration {
		soc := workload.GenerateSocial(workload.DefaultSocialConfig(1))
		engine := pgiv.NewEngineWithOptions(soc.G, opts)
		defer engine.Close()
		regStart := time.Now()
		for _, name := range names {
			q := workload.SocialOptionalQueries[name]
			// Two views per template: identical plans share even the
			// production when sharing is on.
			for copy := 0; copy < 2; copy++ {
				if _, err := engine.RegisterView(fmt.Sprintf("%s-%d", name, copy), q); err != nil {
					log.Fatal(err)
				}
			}
		}
		reg := time.Since(regStart)
		n := iters(2000)
		upd := timeOp(n, func() { soc.Churn(1) })
		allocs := testing.AllocsPerRun(n, func() { soc.Churn(1) })
		mem := engine.MemoryEntries()
		fmt.Printf("%-10s %12v reg %14v/upd %8.0f allocs/op %10d rows\n",
			label, reg.Round(time.Microsecond), upd.Round(time.Nanosecond), allocs, mem)
		record("EXP-M", label, map[string]float64{
			"registration_ns": float64(reg), "update_ns": float64(upd),
			"allocs_per_op": allocs, "memory_entries": float64(mem),
		})
		return upd
	}
	updS := run("shared", pgiv.EngineOptions{NumWorkers: 1})
	updP := run("private", pgiv.EngineOptions{NoSharing: true, NumWorkers: 1})
	fmt.Printf("update speedup from sharing: %.2fx\n", float64(updP)/float64(updS))

	// Incremental maintenance vs full recomputation of the battery.
	soc := workload.GenerateSocial(workload.DefaultSocialConfig(1))
	snap := timeOp(iters(50), func() {
		soc.Churn(1)
		for _, name := range names {
			_, _ = pgiv.Snapshot(soc.G, workload.SocialOptionalQueries[name])
		}
	})
	printCmp("per mixed update", updS, snap)
	record("EXP-M", "vs-recompute", map[string]float64{
		"incremental_ns": float64(updS), "snapshot_ns": float64(snap),
		"speedup": float64(snap) / float64(updS),
	})
}

// expN measures the PR 5 workload class: ordered top-K views
// (ORDER BY/SKIP/LIMIT, the leaderboard battery) maintained by the
// order-statistic TopKNode under a churning score property — against
// full recomputation, and with subplan sharing on vs off. Most flips
// land below the top-10/top-100 folds, so the common case is one rank
// query that proves the window unchanged; boundary crossings emit only
// the rows entering and leaving the window.
func expN() {
	header("EXP-N", "leaderboards: incremental ORDER BY/SKIP/LIMIT under score churn, sharing on/off")
	names := make([]string, 0, len(workload.SocialRankedQueries))
	for name := range workload.SocialRankedQueries {
		names = append(names, name)
	}
	sort.Strings(names)

	run := func(label string, opts pgiv.EngineOptions) time.Duration {
		soc := workload.GenerateSocial(workload.DefaultSocialConfig(1))
		engine := pgiv.NewEngineWithOptions(soc.G, opts)
		defer engine.Close()
		regStart := time.Now()
		for _, name := range names {
			q := workload.SocialRankedQueries[name]
			// Two views per template: identical plans share the TopKNode
			// and even the production when sharing is on.
			for copy := 0; copy < 2; copy++ {
				if _, err := engine.RegisterView(fmt.Sprintf("%s-%d", name, copy), q); err != nil {
					log.Fatal(err)
				}
			}
		}
		reg := time.Since(regStart)
		n := iters(3000)
		upd := timeOp(n, func() { soc.ChurnScores(1) })
		allocs := testing.AllocsPerRun(n, func() { soc.ChurnScores(1) })
		mem := engine.MemoryEntries()
		fmt.Printf("%-10s %12v reg %14v/upd %8.0f allocs/op %10d rows\n",
			label, reg.Round(time.Microsecond), upd.Round(time.Nanosecond), allocs, mem)
		record("EXP-N", label, map[string]float64{
			"registration_ns": float64(reg), "update_ns": float64(upd),
			"allocs_per_op": allocs, "memory_entries": float64(mem),
		})
		return upd
	}
	updS := run("shared", pgiv.EngineOptions{NumWorkers: 1})
	updP := run("private", pgiv.EngineOptions{NoSharing: true, NumWorkers: 1})
	fmt.Printf("update speedup from sharing: %.2fx\n", float64(updP)/float64(updS))

	// Incremental window maintenance vs recomputing (re-sorting) the
	// battery per score flip.
	soc := workload.GenerateSocial(workload.DefaultSocialConfig(1))
	snap := timeOp(iters(100), func() {
		soc.ChurnScores(1)
		for _, name := range names {
			if _, err := pgiv.Snapshot(soc.G, workload.SocialRankedQueries[name]); err != nil {
				log.Fatal(err)
			}
		}
	})
	printCmp("per score flip", updS, snap)
	record("EXP-N", "vs-recompute", map[string]float64{
		"incremental_ns": float64(updS), "snapshot_ns": float64(snap),
		"speedup": float64(snap) / float64(updS),
	})
}

// expOViews are the views maintained during the EXP-O write stream, in
// registration order.
var expOViews = []struct{ name, query string }{
	{"langs", "MATCH (p:Post) RETURN p.lang, count(*)"},
	{"hot", "MATCH (c:Comm) WHERE c.score > 50 RETURN c"},
	{"tags", "MATCH (p:Post)-[:TAGGED]->(t:Tag) RETURN t.name, count(*)"},
}

func expO() {
	header("EXP-O", "pgivd server: Cypher write throughput and subscription fan-out over TCP")

	// Wire path: an in-process pgivd, one writer connection replaying the
	// social write-statement mix, nSubs subscriber connections each
	// streaming every view's per-commit delta batches.
	run := func(label string, nSubs int, opts pgiv.EngineOptions) time.Duration {
		soc := workload.GenerateSocial(workload.DefaultSocialConfig(1))
		engine := pgiv.NewEngineWithOptions(soc.G, opts)
		defer engine.Close()
		srv := server.New(soc.G, engine)
		addr, err := srv.ListenAndServe("127.0.0.1:0")
		if err != nil {
			log.Fatal(err)
		}
		defer srv.Close()

		writer, err := client.Dial(addr.String())
		if err != nil {
			log.Fatal(err)
		}
		defer writer.Close()
		for _, v := range expOViews {
			if _, err := writer.RegisterView(v.name, v.query); err != nil {
				log.Fatal(err)
			}
		}

		var delivered atomic.Int64
		var batches atomic.Int64
		subs := make([]*client.Client, nSubs)
		for i := range subs {
			c, err := client.Dial(addr.String())
			if err != nil {
				log.Fatal(err)
			}
			subs[i] = c
			defer c.Close()
			for _, v := range expOViews {
				if _, _, _, err := c.Subscribe(v.name, func(b client.DeltaBatch) {
					batches.Add(1)
					delivered.Add(int64(len(b.Deltas)))
				}); err != nil {
					log.Fatal(err)
				}
			}
		}

		mix := workload.NewSocialWriteMix(soc.G, 7)
		n := iters(2000)
		for i := 0; i < n/10+10; i++ { // warmup: connections, caches, allocator
			if _, _, err := writer.Exec(mix.Next(), nil); err != nil {
				log.Fatal(err)
			}
		}
		batches.Store(0)
		delivered.Store(0)
		start := time.Now()
		for i := 0; i < n; i++ {
			if _, _, err := writer.Exec(mix.Next(), nil); err != nil {
				log.Fatal(err)
			}
		}
		per := time.Since(start) / time.Duration(n)
		// A ping's response is ordered after every delta frame already
		// fanned out to that connection: after these, the counters are
		// complete.
		for _, c := range subs {
			if err := c.Ping(); err != nil {
				log.Fatal(err)
			}
		}
		fmt.Printf("%-16s %10v/stmt %8.0f stmt/s %8d batches %8d deltas delivered\n",
			label, per.Round(time.Nanosecond), float64(time.Second)/float64(per),
			batches.Load(), delivered.Load())
		record("EXP-O", label, map[string]float64{
			"stmt_ns": float64(per), "stmts_per_sec": float64(time.Second) / float64(per),
			"subscribers": float64(nSubs), "delta_batches": float64(batches.Load()),
			"deltas_delivered": float64(delivered.Load()),
		})
		return per
	}

	wire := run("0-subs/shared", 0, pgiv.EngineOptions{NumWorkers: 1})
	run("1-sub/shared", 1, pgiv.EngineOptions{NumWorkers: 1})
	run("8-subs/shared", 8, pgiv.EngineOptions{NumWorkers: 1})
	run("8-subs/private", 8, pgiv.EngineOptions{NoSharing: true, NumWorkers: 1})

	// In-process baseline: the same statement mix through pgiv.Exec with
	// the same views maintained, no wire. The gap is protocol overhead.
	soc := workload.GenerateSocial(workload.DefaultSocialConfig(1))
	engine := pgiv.NewEngine(soc.G)
	defer engine.Close()
	for _, v := range expOViews {
		if _, err := engine.RegisterView(v.name, v.query); err != nil {
			log.Fatal(err)
		}
	}
	mix := workload.NewSocialWriteMix(soc.G, 7)
	n := iters(2000)
	for i := 0; i < n/10+10; i++ {
		if _, err := pgiv.Exec(soc.G, mix.Next()); err != nil {
			log.Fatal(err)
		}
	}
	direct := timeOp(n, func() {
		if _, err := pgiv.Exec(soc.G, mix.Next()); err != nil {
			log.Fatal(err)
		}
	})
	fmt.Printf("%-16s %10v/stmt %8.0f stmt/s (no server)\n",
		"in-process", direct.Round(time.Nanosecond), float64(time.Second)/float64(direct))
	fmt.Printf("wire overhead per statement: %v (%.2fx)\n",
		(wire - direct).Round(time.Nanosecond), float64(wire)/float64(direct))
	record("EXP-O", "in-process", map[string]float64{
		"stmt_ns": float64(direct), "wire_overhead_ns": float64(wire - direct),
	})
}

// expPViews are the views the EXP-P read mix consults (the
// workload.ReadViews queries), in registration order.
var expPViewNames = []string{"bylang", "top20"}

// expP measures the MVCC read path: read throughput and latency at N
// reader connections under a sustained write stream, MVCC snapshots vs
// the serialized baseline (-serialized pgivd; everything behind one
// lock), plus the slow-read/commit-latency interaction. The write mix
// includes occasional bulk statements whose commits are slow — under the
// serialized server every in-flight read queues behind them.
func expP() {
	header("EXP-P", "MVCC read path: concurrent reads under sustained writes vs serialized baseline")

	// This experiment is about lock contention, not CPU parallelism: the
	// serialized baseline makes readers wait out whole commits on the
	// server's lock, MVCC lets them proceed against pinned epochs. With
	// GOMAXPROCS=1 the Go runtime itself serialises every goroutine onto
	// one thread and a waiting reader cannot run mid-commit even when no
	// lock blocks it, so the two modes become indistinguishable. Run the
	// experiment with at least 4 scheduler threads (the normal server
	// deployment shape); on a single-core host the OS then time-slices
	// them, which is exactly what lets a lock-free read overlap a commit.
	if prev := runtime.GOMAXPROCS(0); prev < 4 {
		runtime.GOMAXPROCS(4)
		defer runtime.GOMAXPROCS(prev)
	}

	dur := 1200 * time.Millisecond
	if *quick {
		dur = 300 * time.Millisecond
	}

	type result struct {
		readsPerSec, writesPerSec float64
		readAvg, readP99          time.Duration
		commitAvg                 time.Duration
	}

	run := func(label string, serialized bool, nReaders int) result {
		soc := workload.GenerateSocial(workload.DefaultSocialConfig(1))
		engine := pgiv.NewEngineWithOptions(soc.G, pgiv.EngineOptions{NumWorkers: 1})
		defer engine.Close()
		var opts []server.Option
		if serialized {
			opts = append(opts, server.WithSerializedReads())
		}
		srv := server.New(soc.G, engine, opts...)
		addr, err := srv.ListenAndServe("127.0.0.1:0")
		if err != nil {
			log.Fatal(err)
		}
		defer srv.Close()

		setup, err := client.Dial(addr.String())
		if err != nil {
			log.Fatal(err)
		}
		defer setup.Close()
		for i, q := range workload.ReadViews() {
			if _, err := setup.RegisterView(expPViewNames[i], q); err != nil {
				log.Fatal(err)
			}
		}

		var stop atomic.Bool
		var wg sync.WaitGroup

		// Writers: a few connections so the commit path stays busy
		// back-to-back (while one writer's response is on the wire
		// another holds the lock) — the sustained-write regime the
		// experiment is about.
		const nWriters = 3
		writeCounts := make([]int64, nWriters)
		commitTotals := make([]time.Duration, nWriters)
		for w := 0; w < nWriters; w++ {
			wc, err := client.Dial(addr.String())
			if err != nil {
				log.Fatal(err)
			}
			defer wc.Close()
			wg.Add(1)
			go func(w int, wc *client.Client) {
				defer wg.Done()
				wmix := workload.NewSocialReadWriteMix(workload.NewSocialWriteMix(soc.G, int64(7+w)), int64(11+w))
				for !stop.Load() {
					stmt := wmix.NextWrite()
					t0 := time.Now()
					if _, _, err := wc.Exec(stmt, nil); err != nil {
						log.Fatal(err)
					}
					commitTotals[w] += time.Since(t0)
					writeCounts[w]++
				}
			}(w, wc)
		}

		// Readers: nReaders connections, each mixing view reads and
		// ad-hoc snapshot queries.
		readCounts := make([]int64, nReaders)
		readLats := make([][]time.Duration, nReaders)
		for r := 0; r < nReaders; r++ {
			c, err := client.Dial(addr.String())
			if err != nil {
				log.Fatal(err)
			}
			defer c.Close()
			wg.Add(1)
			go func(r int, c *client.Client) {
				defer wg.Done()
				rmix := workload.NewSocialReadWriteMix(nil, int64(100+r))
				for !stop.Load() {
					req := rmix.NextRead(expPViewNames)
					t0 := time.Now()
					if req.View != "" {
						_, _, _, err = c.Rows(req.View)
					} else {
						_, _, err = c.Query(req.Query, nil)
					}
					if err != nil {
						log.Fatal(err)
					}
					readLats[r] = append(readLats[r], time.Since(t0))
					readCounts[r]++
				}
			}(r, c)
		}

		time.Sleep(dur)
		stop.Store(true)
		wg.Wait()

		var writes int64
		var commitTotal time.Duration
		for w := 0; w < nWriters; w++ {
			writes += writeCounts[w]
			commitTotal += commitTotals[w]
		}
		var reads int64
		var lats []time.Duration
		for r := 0; r < nReaders; r++ {
			reads += readCounts[r]
			lats = append(lats, readLats[r]...)
		}
		sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
		res := result{
			readsPerSec:  float64(reads) / dur.Seconds(),
			writesPerSec: float64(writes) / dur.Seconds(),
		}
		if reads > 0 {
			var total time.Duration
			for _, l := range lats {
				total += l
			}
			res.readAvg = total / time.Duration(reads)
			res.readP99 = lats[len(lats)*99/100]
		}
		if writes > 0 {
			res.commitAvg = commitTotal / time.Duration(writes)
		}
		fmt.Printf("%-16s %9.0f reads/s %9.0f writes/s  read avg %8v p99 %8v  commit avg %8v\n",
			label, res.readsPerSec, res.writesPerSec,
			res.readAvg.Round(time.Microsecond), res.readP99.Round(time.Microsecond),
			res.commitAvg.Round(time.Microsecond))
		record("EXP-P", label, map[string]float64{
			"readers": float64(nReaders), "reads_per_sec": res.readsPerSec,
			"writes_per_sec": res.writesPerSec, "read_avg_ns": float64(res.readAvg),
			"read_p99_ns": float64(res.readP99), "commit_avg_ns": float64(res.commitAvg),
		})
		return res
	}

	base1 := run("serialized/1r", true, 1)
	mvcc1 := run("mvcc/1r", false, 1)
	base4 := run("serialized/4r", true, 4)
	mvcc4 := run("mvcc/4r", false, 4)
	run("mvcc/8r", false, 8)
	fmt.Printf("read throughput mvcc vs serialized: %.2fx at 1 reader, %.2fx at 4 readers\n",
		mvcc1.readsPerSec/base1.readsPerSec, mvcc4.readsPerSec/base4.readsPerSec)
	record("EXP-P", "speedup", map[string]float64{
		"read_speedup_1r": mvcc1.readsPerSec / base1.readsPerSec,
		"read_speedup_4r": mvcc4.readsPerSec / base4.readsPerSec,
	})

	// Slow-read interaction: average commit latency while one connection
	// repeatedly runs an expensive variable-length-path query (tens of
	// milliseconds at this scale — an order of magnitude longer than a
	// commit). Serialized, every commit queues behind the whole scan;
	// MVCC, the scan runs against its pinned epoch and commits only share
	// the CPU with it.
	slow := func(label string, serialized bool) (quiet, contended time.Duration) {
		soc := workload.GenerateSocial(workload.DefaultSocialConfig(4))
		engine := pgiv.NewEngineWithOptions(soc.G, pgiv.EngineOptions{NumWorkers: 1})
		defer engine.Close()
		var opts []server.Option
		if serialized {
			opts = append(opts, server.WithSerializedReads())
		}
		srv := server.New(soc.G, engine, opts...)
		addr, err := srv.ListenAndServe("127.0.0.1:0")
		if err != nil {
			log.Fatal(err)
		}
		defer srv.Close()
		writer, err := client.Dial(addr.String())
		if err != nil {
			log.Fatal(err)
		}
		defer writer.Close()
		wmix := workload.NewSocialWriteMix(soc.G, 7)
		n := iters(300)
		measure := func() time.Duration {
			start := time.Now()
			for i := 0; i < n; i++ {
				if _, _, err := writer.Exec(wmix.Next(), nil); err != nil {
					log.Fatal(err)
				}
			}
			return time.Since(start) / time.Duration(n)
		}
		quiet = measure()

		// Control: a lock-free CPU burner (allocating, like query
		// evaluation does, so it exerts comparable GC pressure) costs
		// commits pure processor sharing — the floor any concurrent
		// reader implies on this machine, locks aside. A slow read that
		// pushes commit latency no further than this floor is not
		// blocking the commit path.
		var stop atomic.Bool
		done := make(chan struct{})
		go func() {
			defer close(done)
			var sink []*int
			for !stop.Load() {
				for i := 0; i < 1024; i++ {
					v := i
					sink = append(sink, &v)
				}
				sink = sink[:0]
			}
			_ = sink
		}()
		floor := measure()
		stop.Store(true)
		<-done

		reader, err := client.Dial(addr.String())
		if err != nil {
			log.Fatal(err)
		}
		defer reader.Close()
		stop.Store(false)
		done = make(chan struct{})
		go func() {
			defer close(done)
			for !stop.Load() {
				if _, _, err := reader.Query("MATCH (p:Post)-[:REPLY*]->(c:Comm) RETURN count(*)", nil); err != nil {
					log.Fatal(err)
				}
			}
		}()
		contended = measure()
		stop.Store(true)
		<-done
		fmt.Printf("%-16s commit avg quiet %8v  cpu-share floor %8v  under slow reads %8v  (%.2fx quiet, %.2fx floor)\n",
			label, quiet.Round(time.Microsecond), floor.Round(time.Microsecond),
			contended.Round(time.Microsecond),
			float64(contended)/float64(quiet), float64(contended)/float64(floor))
		record("EXP-P", label+"/slow-read", map[string]float64{
			"commit_quiet_ns": float64(quiet), "commit_floor_ns": float64(floor),
			"commit_contended_ns": float64(contended),
			"commit_slowdown":     float64(contended) / float64(quiet),
			"commit_vs_floor":     float64(contended) / float64(floor),
		})
		return
	}
	slow("serialized", true)
	slow("mvcc", false)
}

func buildChain(depth int) (*pgiv.Graph, []pgiv.ID, []pgiv.ID) {
	g := pgiv.NewGraph()
	ids := []pgiv.ID{g.AddVertex([]string{"Post"}, pgiv.Props{"lang": pgiv.Str("en")})}
	var eids []pgiv.ID
	for i := 0; i < depth; i++ {
		c := g.AddVertex([]string{"Comm"}, pgiv.Props{"lang": pgiv.Str("en")})
		eids = append(eids, mustEdge(g, ids[len(ids)-1], c))
		ids = append(ids, c)
	}
	return g, ids, eids
}

// multiViewChurn times one tail-edge flip with nv identical transitive
// views registered, propagated with the given worker count.
func multiViewChurn(nv, workers int) time.Duration {
	g, ids, eids := buildChain(16)
	engine := pgiv.NewEngineWithOptions(g, pgiv.EngineOptions{NumWorkers: workers})
	defer engine.Close()
	for i := 0; i < nv; i++ {
		if _, err := engine.RegisterView(fmt.Sprintf("threads-%d", i), paperQuery); err != nil {
			log.Fatal(err)
		}
	}
	last := eids[len(eids)-1]
	src, dst := ids[len(ids)-2], ids[len(ids)-1]
	n := iters(1500)
	if n < 10 {
		n = 10
	}
	return timeOp(n, func() {
		_ = g.RemoveEdge(last)
		last = mustEdge(g, src, dst)
	})
}

// expQ measures what durability costs and what recovery buys: commit
// throughput of the social write mix under each WAL fsync policy
// against the volatile baseline, then cold-start recovery time as a
// function of how many commits sit in the WAL tail past the checkpoint.
func expQ() {
	header("EXP-Q", "Durability: WAL fsync overhead on commits, recovery time vs WAL-tail length")

	execStmt := func(g *graph.Graph, stmt string) {
		st, err := cypher.ParseStatement(stmt)
		if err != nil {
			log.Fatal(err)
		}
		if _, err := write.ExecStatement(g, st.Write, nil); err != nil {
			log.Fatal(err)
		}
	}
	seed := func(engine *ivm.Engine, g *graph.Graph) {
		for i, q := range workload.ReadViews() {
			if _, err := engine.RegisterView(expPViewNames[i], q); err != nil {
				log.Fatal(err)
			}
		}
		soc := workload.NewSocial(workload.DefaultSocialConfig(1))
		soc.G = g
		soc.Load()
	}

	// Part 1: commit throughput per fsync policy. Same preloaded graph,
	// same maintained views, same deterministic write mix — the only
	// variable is what the commit path does for durability.
	n := iters(600)
	if n < 40 {
		n = 40
	}
	fmt.Printf("commit throughput, social write mix, %d statements:\n", n)
	var volatilePerSec float64
	for _, mode := range []string{"volatile", wal.FsyncOff, wal.FsyncInterval, wal.FsyncAlways} {
		dir, err := os.MkdirTemp("", "pgiv-expq-")
		if err != nil {
			log.Fatal(err)
		}
		g := graph.New()
		var engine *ivm.Engine
		if mode == "volatile" {
			engine = ivm.NewEngine(g)
		} else {
			engine, err = ivm.OpenDurable(g, ivm.DurabilityOptions{
				WALPath:       filepath.Join(dir, "wal.log"),
				CheckpointDir: filepath.Join(dir, "checkpoint"),
				Fsync:         mode,
			})
			if err != nil {
				log.Fatal(err)
			}
		}
		seed(engine, g)
		mix := workload.NewSocialWriteMix(g, 7)
		start := time.Now()
		for i := 0; i < n; i++ {
			execStmt(g, mix.Next())
		}
		el := time.Since(start)
		if err := engine.CloseDurable(); err != nil {
			log.Fatal(err)
		}
		os.RemoveAll(dir)
		perSec := float64(n) / el.Seconds()
		label := mode
		if mode != "volatile" {
			label = "wal fsync=" + mode
		}
		overhead := 1.0
		if volatilePerSec == 0 {
			volatilePerSec = perSec
		} else {
			overhead = volatilePerSec / perSec
		}
		fmt.Printf("  %-20s %9.0f commits/s  mean %8v  %5.2fx vs volatile\n",
			label, perSec, (el / time.Duration(n)).Round(time.Microsecond), overhead)
		record("EXP-Q", "commit/"+label, map[string]float64{
			"commits_per_sec": perSec, "mean_commit_ns": float64(el / time.Duration(n)),
			"overhead_vs_volatile": overhead,
		})
	}

	// Part 2: recovery cost. Checkpoint once, run `tail` more commits,
	// abandon the engine without a final checkpoint (a crash, minus the
	// page-cache loss — fsync=off keeps the tail readable in-process),
	// and time a cold OpenDurable: checkpoint load + tail replay through
	// the normal propagation path. Tail 0 isolates the checkpoint load.
	tails := []int{0, 200, 1000, 4000}
	if *quick {
		tails = []int{0, 100, 400}
	}
	fmt.Printf("recovery time, checkpoint + WAL tail replay (fsync=off):\n")
	for _, tail := range tails {
		dir, err := os.MkdirTemp("", "pgiv-expq-")
		if err != nil {
			log.Fatal(err)
		}
		dopts := ivm.DurabilityOptions{
			WALPath:       filepath.Join(dir, "wal.log"),
			CheckpointDir: filepath.Join(dir, "checkpoint"),
			Fsync:         wal.FsyncOff,
		}
		g := graph.New()
		engine, err := ivm.OpenDurable(g, dopts)
		if err != nil {
			log.Fatal(err)
		}
		seed(engine, g)
		if err := engine.CheckpointNow(); err != nil {
			log.Fatal(err)
		}
		mix := workload.NewSocialWriteMix(g, 11)
		for i := 0; i < tail; i++ {
			execStmt(g, mix.Next())
		}
		wantEpoch := g.Epoch()
		// Abandoned, not closed: no final checkpoint, the tail stays in
		// the log — the crash shape recovery exists for.
		g2 := graph.New()
		start := time.Now()
		engine2, err := ivm.OpenDurable(g2, dopts)
		recov := time.Since(start)
		if err != nil {
			log.Fatal(err)
		}
		if g2.Epoch() != wantEpoch {
			log.Fatalf("EXP-Q: recovered epoch %d, want %d", g2.Epoch(), wantEpoch)
		}
		if err := engine2.CloseDurable(); err != nil {
			log.Fatal(err)
		}
		os.RemoveAll(dir)
		perSec := 0.0
		if tail > 0 {
			perSec = float64(tail) / recov.Seconds()
		}
		fmt.Printf("  tail %6d commits   recovery %10v   replay %9.0f commits/s\n",
			tail, recov.Round(time.Microsecond), perSec)
		record("EXP-Q", fmt.Sprintf("recovery/tail-%d", tail), map[string]float64{
			"tail_commits": float64(tail), "recovery_ns": float64(recov),
			"replay_commits_per_sec": perSec,
		})
	}
}

func expR() {
	header("EXP-R", "Rewrite serving: ad-hoc reads from materialized views vs from-scratch snapshot evaluation")

	// ---- Part 1: per-template read latency on a quiet graph ----------
	// Each battery query is answered through the rewrite planner (exact
	// hit, residual hit, or miss) and from scratch against a pinned MVCC
	// snapshot — the same evaluation a -no-rewrite server performs, so
	// the speedup isolates what the planner saves. The miss row is the
	// planner's overhead bound: it must stay ~1x.
	soc := workload.GenerateSocial(workload.DefaultSocialConfig(2))
	engine := pgiv.NewEngineWithOptions(soc.G, pgiv.EngineOptions{NumWorkers: 1})
	defer engine.Close()
	for _, v := range []struct{ name, q string }{
		{"vr_knows", "MATCH (a:Person)-[:KNOWS]->(b:Person) RETURN a, b"},
		{"vr_posts", "MATCH (p:Post) WHERE p.score > 50 RETURN p, p.score, p.lang"},
		{"vr_agg", "MATCH (c:Comm) RETURN c.lang, count(*) AS n"},
	} {
		if _, err := engine.RegisterView(v.name, v.q); err != nil {
			log.Fatal(err)
		}
	}
	battery := []struct{ kind, q string }{
		{"exact", "MATCH (a:Person)-[:KNOWS]->(b:Person) RETURN a, b"},
		{"residual", "MATCH (p:Post) WHERE p.score > 80 RETURN p.score, p.lang"},
		{"residual", "MATCH (c:Comm) RETURN c.lang, count(*) AS n ORDER BY n DESC LIMIT 3"},
		{"miss", "MATCH (a:Person)-[:LIKES]->(p:Post) RETURN a, p"},
	}
	// Warm both paths once per template before timing: the first engine
	// read pays the one-time MVCC store construction (graph-sized, not
	// query-sized) and the lazy EnableRewrite publish.
	for _, b := range battery {
		if _, err := pgiv.Query(engine, b.q); err != nil {
			log.Fatal(err)
		}
		if _, err := snapshot.Query(soc.G, b.q, nil); err != nil {
			log.Fatal(err)
		}
	}
	n := iters(200)
	if n < 60 {
		n = 60 // the quick run gates CI on these ratios; keep them stable
	}
	minHit, geoHit, hits := 0.0, 1.0, 0
	for _, b := range battery {
		b := b
		rew := timeOp(n, func() {
			if _, err := pgiv.Query(engine, b.q); err != nil {
				log.Fatal(err)
			}
		})
		scr := timeOp(n, func() {
			snap := soc.G.Snapshot()
			if _, err := snapshot.Query(snap, b.q, nil); err != nil {
				log.Fatal(err)
			}
			snap.Release()
		})
		spd := float64(scr) / float64(rew)
		fmt.Printf("%-8s %-72s rewrite %10v  scratch %10v  %6.1fx\n",
			b.kind, b.q, rew.Round(time.Microsecond), scr.Round(time.Microsecond), spd)
		record("EXP-R", "latency/"+b.kind, map[string]float64{
			"rewrite_ns": float64(rew), "scratch_ns": float64(scr), "speedup": spd,
		})
		if b.kind != "miss" {
			if minHit == 0 || spd < minHit {
				minHit = spd
			}
			geoHit *= spd
			hits++
		}
	}
	geoHit = math.Pow(geoHit, 1/float64(hits))
	st := engine.Stats()
	fmt.Printf("planner outcomes: %d exact, %d residual (%d residual ops), %d miss; hit speedup %.1fx geomean, %.1fx worst\n",
		st.RewriteExact, st.RewriteResidual, st.RewriteResidualOps, st.RewriteMiss, geoHit, minHit)
	record("EXP-R", "hit_speedup", map[string]float64{
		"geomean_hit_speedup": geoHit,
		"min_hit_speedup":     minHit,
		"exact":               float64(st.RewriteExact),
		"residual":            float64(st.RewriteResidual),
		"miss":                float64(st.RewriteMiss),
	})
	// CI sanity floor (quick runs only): a rewrite-served hit must never
	// be materially slower than evaluating from scratch. This is a
	// correctness-of-purpose check, not a performance gate.
	if *quick && minHit < 1.0/1.5 {
		log.Fatalf("EXP-R: rewrite-hit reads are %.2fx from-scratch speed (floor 1/1.5): the rewrite path is slower than what it replaces", minHit)
	}

	// ---- Part 2: server read throughput under sustained writes -------
	// The EXP-P serving shape (writers keep the commit path busy), but
	// every read is an ad-hoc query; the hit-rate sweep varies how many
	// of them the planner can cover. -no-rewrite is the baseline.
	if prev := runtime.GOMAXPROCS(0); prev < 4 {
		runtime.GOMAXPROCS(4)
		defer runtime.GOMAXPROCS(prev)
	}
	dur := 1200 * time.Millisecond
	if *quick {
		dur = 300 * time.Millisecond
	}
	hitQs := []string{
		"MATCH (a:Person)-[:KNOWS]->(b:Person) RETURN a, b",
		"MATCH (p:Post) WHERE p.score > 80 RETURN p.score, p.lang",
	}
	missQs := []string{
		"MATCH (a:Person)-[:LIKES]->(p:Post) RETURN a, p",
		"MATCH (c:Comm) WHERE c.score < 10 RETURN c",
	}
	run := func(label string, rewrite bool, hitPct int) float64 {
		soc := workload.GenerateSocial(workload.DefaultSocialConfig(1))
		eng := pgiv.NewEngineWithOptions(soc.G, pgiv.EngineOptions{NumWorkers: 1})
		defer eng.Close()
		opts := []server.Option{}
		if !rewrite {
			opts = append(opts, server.WithoutRewrite())
		}
		srv := server.New(soc.G, eng, opts...)
		addr, err := srv.ListenAndServe("127.0.0.1:0")
		if err != nil {
			log.Fatal(err)
		}
		defer srv.Close()
		setup, err := client.Dial(addr.String())
		if err != nil {
			log.Fatal(err)
		}
		defer setup.Close()
		for _, v := range []struct{ name, q string }{
			{"vr_knows", "MATCH (a:Person)-[:KNOWS]->(b:Person) RETURN a, b"},
			{"vr_posts", "MATCH (p:Post) WHERE p.score > 50 RETURN p, p.score, p.lang"},
		} {
			if _, err := setup.RegisterView(v.name, v.q); err != nil {
				log.Fatal(err)
			}
		}

		var stop atomic.Bool
		var wg sync.WaitGroup
		const nWriters = 2
		var writes atomic.Int64
		for w := 0; w < nWriters; w++ {
			wc, err := client.Dial(addr.String())
			if err != nil {
				log.Fatal(err)
			}
			defer wc.Close()
			wg.Add(1)
			go func(w int, wc *client.Client) {
				defer wg.Done()
				wmix := workload.NewSocialWriteMix(soc.G, int64(7+w))
				for !stop.Load() {
					if _, _, err := wc.Exec(wmix.Next(), nil); err != nil {
						log.Fatal(err)
					}
					writes.Add(1)
				}
			}(w, wc)
		}
		const nReaders = 2
		var reads atomic.Int64
		for r := 0; r < nReaders; r++ {
			c, err := client.Dial(addr.String())
			if err != nil {
				log.Fatal(err)
			}
			defer c.Close()
			wg.Add(1)
			go func(r int, c *client.Client) {
				defer wg.Done()
				rng := rand.New(rand.NewSource(int64(100 + r)))
				for !stop.Load() {
					var q string
					if rng.Intn(100) < hitPct {
						q = hitQs[rng.Intn(len(hitQs))]
					} else {
						q = missQs[rng.Intn(len(missQs))]
					}
					if _, _, err := c.Query(q, nil); err != nil {
						log.Fatal(err)
					}
					reads.Add(1)
				}
			}(r, c)
		}
		time.Sleep(dur)
		stop.Store(true)
		wg.Wait()
		rps := float64(reads.Load()) / dur.Seconds()
		wps := float64(writes.Load()) / dur.Seconds()
		fmt.Printf("%-18s %9.0f ad-hoc reads/s %9.0f writes/s\n", label, rps, wps)
		record("EXP-R", label, map[string]float64{
			"hit_pct": float64(hitPct), "reads_per_sec": rps, "writes_per_sec": wps,
		})
		return rps
	}
	base := run("norewrite/h100", false, 100)
	for _, h := range []int{0, 50, 100} {
		rps := run(fmt.Sprintf("rewrite/h%d", h), true, h)
		if h == 100 {
			fmt.Printf("served throughput at 100%% coverable: %.2fx the no-rewrite baseline\n", rps/base)
			record("EXP-R", "throughput_speedup", map[string]float64{"h100_vs_norewrite": rps / base})
		}
	}
}

func expS() {
	header("EXP-S", "shortest-path views: bounded delta-Dijkstra repair vs full recompute under KNOWS churn")
	names := make([]string, 0, len(workload.SocialRoutingQueries))
	for name := range workload.SocialRoutingQueries {
		names = append(names, name)
	}
	sort.Strings(names)

	// KNOWS churn: alternate insert/delete so the edge count stays
	// stable while witnesses keep moving.
	churn := func(soc *workload.Social, i int) {
		if i%2 == 0 {
			soc.AddKnows()
		} else {
			soc.RemoveKnows()
		}
	}

	run := func(label string, opts pgiv.EngineOptions) time.Duration {
		soc := workload.GenerateSocial(workload.DefaultSocialConfig(4))
		engine := pgiv.NewEngineWithOptions(soc.G, opts)
		defer engine.Close()
		regStart := time.Now()
		for _, name := range names {
			q := workload.SocialRoutingQueries[name]
			// Two views per template on a scale-4 graph (400 persons,
			// ~2400 KNOWS edges): identical plans share the stateful
			// ShortestPathNode (and the production) when sharing is on.
			// The larger graph keeps the repair ball — the reverse BFS
			// around a flipped edge, bounded by the battery's hop windows
			// — a small fraction of the source set; at scale 1 the ball
			// covers nearly everything and repair degenerates into
			// recompute.
			for copy := 0; copy < 2; copy++ {
				if _, err := engine.RegisterView(fmt.Sprintf("%s-%d", name, copy), q); err != nil {
					log.Fatal(err)
				}
			}
		}
		reg := time.Since(regStart)
		n := iters(2000)
		i := 0
		upd := timeOp(n, func() { churn(soc, i); i++ })
		allocs := testing.AllocsPerRun(n/2, func() { churn(soc, i); i++ })
		mem := engine.MemoryEntries()
		fmt.Printf("%-10s %12v reg %14v/upd %8.0f allocs/op %10d rows\n",
			label, reg.Round(time.Microsecond), upd.Round(time.Nanosecond), allocs, mem)
		record("EXP-S", label, map[string]float64{
			"registration_ns": float64(reg), "update_ns": float64(upd),
			"allocs_per_op": allocs, "memory_entries": float64(mem),
		})
		return upd
	}
	updS := run("shared", pgiv.EngineOptions{NumWorkers: 1})
	updP := run("private", pgiv.EngineOptions{NoSharing: true, NumWorkers: 1})
	fmt.Printf("update speedup from sharing: %.2fx\n", float64(updP)/float64(updS))

	// Incremental repair vs recomputing every route battery per commit.
	soc := workload.GenerateSocial(workload.DefaultSocialConfig(4))
	i := 0
	m := iters(100)
	if m < 10 {
		m = 10
	}
	snap := timeOp(m, func() {
		churn(soc, i)
		i++
		for _, name := range names {
			if _, err := pgiv.Snapshot(soc.G, workload.SocialRoutingQueries[name]); err != nil {
				log.Fatal(err)
			}
		}
	})
	printCmp("per KNOWS flip", updS, snap)
	spd := float64(snap) / float64(updS)
	record("EXP-S", "vs-recompute", map[string]float64{
		"incremental_ns": float64(updS), "snapshot_ns": float64(snap),
		"speedup": spd,
	})
	// CI sanity floor (quick runs only): per-commit repair must beat a
	// full recompute of the battery by a wide margin — the whole point of
	// memoizing distance fragments. The floor sits far below the typical
	// figure so it gates purpose, not machine speed.
	if *quick && spd < 10 {
		log.Fatalf("EXP-S: incremental repair is only %.1fx a full recompute (floor 10x)", spd)
	}
}
