// Command pgivd serves a pgiv graph and its incrementally maintained
// views over TCP. Clients (package pgiv/client) execute Cypher write
// statements, run ad-hoc read queries, register views, and subscribe to
// per-commit view delta streams.
//
// Usage:
//
//	pgivd [-addr host:port] [-workload social -scale N] [-sharing]
//	      [-serialized] [-no-rewrite] [-wal-dir DIR]
//	      [-fsync always|interval|off] [-checkpoint-every N]
//	      [-read-idle D] [-write-timeout D]
//
// With -workload, the graph is preloaded before the server starts
// accepting connections. By default reads (ad-hoc queries, view reads)
// run against epoch-pinned MVCC snapshots, concurrent with writes, and
// ad-hoc queries covered by a registered view's memoized rows are
// answered from that memo plus a residual plan instead of a from-scratch
// evaluation (-no-rewrite disables this); -serialized restores the
// legacy behaviour of serialising every request on one lock (the
// benchmark baseline).
//
// With -wal-dir, the server is durable: every commit is written ahead to
// DIR/wal.log, Rete memo state is checkpointed incrementally into
// DIR/checkpoint every -checkpoint-every commits, and on startup the
// graph, the registered views and their maintained contents are
// recovered from checkpoint + WAL tail — subscribers resume at the
// pre-crash commit sequence. On SIGTERM/SIGINT the server drains
// in-flight commits, sends subscribers a goodbye frame, writes a final
// checkpoint and flushes the WAL before exiting. -workload only preloads
// when recovery starts from an empty state.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"path/filepath"
	"syscall"
	"time"

	"pgiv/internal/graph"
	"pgiv/internal/ivm"
	"pgiv/internal/server"
	"pgiv/internal/workload"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:7473", "listen address")
	load := flag.String("workload", "", "preload workload: social (empty = start empty)")
	scale := flag.Int("scale", 1, "workload scale factor")
	sharing := flag.Bool("sharing", true, "share Rete subplans across views")
	serialized := flag.Bool("serialized", false, "serialise reads on the write lock (disable MVCC snapshot reads)")
	noRewrite := flag.Bool("no-rewrite", false, "disable answering ad-hoc queries from materialized views")
	walDir := flag.String("wal-dir", "", "durability directory (WAL + checkpoints); empty = volatile")
	fsync := flag.String("fsync", "always", "WAL sync policy: always, interval or off")
	fsyncIv := flag.Duration("fsync-interval", 100*time.Millisecond, "sync period under -fsync interval")
	chkEvery := flag.Int("checkpoint-every", 1000, "checkpoint after N commits (0 = only at shutdown)")
	readIdle := flag.Duration("read-idle", 0, "disconnect clients quiet for this long (0 = never)")
	writeTO := flag.Duration("write-timeout", 0, "per-frame write deadline (0 = none)")
	flag.Parse()

	g := graph.New()
	var (
		engine *ivm.Engine
		err    error
	)
	if *walDir != "" {
		if err := os.MkdirAll(*walDir, 0o755); err != nil {
			log.Fatalf("pgivd: %v", err)
		}
		engine, err = ivm.OpenDurable(g, ivm.DurabilityOptions{
			WALPath:         filepath.Join(*walDir, "wal.log"),
			CheckpointDir:   filepath.Join(*walDir, "checkpoint"),
			Fsync:           *fsync,
			FsyncInterval:   *fsyncIv,
			CheckpointEvery: *chkEvery,
		}, ivm.Options{NoSharing: !*sharing})
		if err != nil {
			log.Fatalf("pgivd: recovery: %v", err)
		}
		if g.Epoch() > 0 || len(engine.ViewNames()) > 0 {
			fmt.Printf("recovered to epoch %d with %d views (wal lsn %d)\n",
				g.Epoch(), len(engine.ViewNames()), engine.WALLastLSN())
		}
	}

	// Preload only a fresh graph: a recovered one already has its data.
	if g.Epoch() == 0 && g.NumVertices() == 0 {
		switch *load {
		case "":
		case "social":
			s := workload.NewSocial(workload.DefaultSocialConfig(*scale))
			s.G = g
			s.Load()
			fmt.Printf("preloaded social workload, scale %d\n", *scale)
		default:
			fmt.Fprintf(os.Stderr, "unknown workload %q\n", *load)
			os.Exit(2)
		}
	}

	if engine == nil {
		engine = ivm.NewEngine(g, ivm.Options{NoSharing: !*sharing})
	}
	opts := []server.Option{server.WithTimeouts(server.Timeouts{
		ReadIdle: *readIdle, Write: *writeTO,
	})}
	if *serialized {
		opts = append(opts, server.WithSerializedReads())
	}
	if *noRewrite {
		opts = append(opts, server.WithoutRewrite())
	}
	srv := server.New(g, engine, opts...)

	bound, err := srv.ListenAndServe(*addr)
	if err != nil {
		log.Fatalf("pgivd: %v", err)
	}
	fmt.Printf("pgivd listening on %s\n", bound)

	// Serve until SIGTERM/SIGINT, then shut down gracefully: closing the
	// server first drains in-flight commits (Close waits for connection
	// goroutines, and commits run inside request handling) and sends
	// subscribers a goodbye; the final checkpoint + WAL flush follow.
	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, syscall.SIGTERM, syscall.SIGINT)
	sig := <-sigc
	fmt.Printf("pgivd: %s: shutting down\n", sig)
	srv.CloseWithTimeout(5 * time.Second)
	if err := engine.CloseDurable(); err != nil {
		log.Fatalf("pgivd: shutdown: %v", err)
	}
}
