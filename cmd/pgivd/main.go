// Command pgivd serves a pgiv graph and its incrementally maintained
// views over TCP. Clients (package pgiv/client) execute Cypher write
// statements, run ad-hoc read queries, register views, and subscribe to
// per-commit view delta streams.
//
// Usage:
//
//	pgivd [-addr host:port] [-workload social -scale N] [-sharing]
//	      [-serialized]
//
// With -workload, the graph is preloaded before the server starts
// accepting connections. By default reads (ad-hoc queries, view reads)
// run against epoch-pinned MVCC snapshots, concurrent with writes;
// -serialized restores the legacy behaviour of serialising every
// request on one lock (the benchmark baseline).
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"pgiv/internal/graph"
	"pgiv/internal/ivm"
	"pgiv/internal/server"
	"pgiv/internal/workload"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:7473", "listen address")
	load := flag.String("workload", "", "preload workload: social (empty = start empty)")
	scale := flag.Int("scale", 1, "workload scale factor")
	sharing := flag.Bool("sharing", true, "share Rete subplans across views")
	serialized := flag.Bool("serialized", false, "serialise reads on the write lock (disable MVCC snapshot reads)")
	flag.Parse()

	g := graph.New()
	switch *load {
	case "":
	case "social":
		s := workload.NewSocial(workload.DefaultSocialConfig(*scale))
		s.G = g
		s.Load()
		fmt.Printf("preloaded social workload, scale %d\n", *scale)
	default:
		fmt.Fprintf(os.Stderr, "unknown workload %q\n", *load)
		os.Exit(2)
	}

	engine := ivm.NewEngine(g, ivm.Options{NoSharing: !*sharing})
	defer engine.Close()
	var opts []server.Option
	if *serialized {
		opts = append(opts, server.WithSerializedReads())
	}
	srv := server.New(g, engine, opts...)
	defer srv.Close()

	bound, err := srv.ListenAndServe(*addr)
	if err != nil {
		log.Fatalf("pgivd: %v", err)
	}
	fmt.Printf("pgivd listening on %s\n", bound)
	select {} // serve until killed
}
