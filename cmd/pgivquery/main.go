// Command pgivquery runs an openCypher query or write statement against
// a generated workload graph — one-shot snapshot evaluation, an
// incrementally maintained view (printing the compilation pipeline of
// the paper with -explain), a single write statement, or an interactive
// REPL that executes writes through the same executor as pgivd and
// prints every registered view's per-commit delta batch.
//
// Examples:
//
//	pgivquery -workload social "MATCH (p:Post)-[:REPLY]->(c) RETURN p, c"
//	pgivquery -workload train -explain "MATCH (s:Segment) WHERE s.length <= 0 RETURN s"
//	pgivquery -workload social -incremental -churn 100 "MATCH (p:Post) RETURN count(*)"
//	pgivquery -workload social "MATCH (p:Post {lang: 'de'}) DETACH DELETE p"
//	pgivquery -repl -workload paper
package main

import (
	"bufio"
	"errors"
	"flag"
	"fmt"
	"log"
	"os"
	"strings"

	"pgiv"
	"pgiv/internal/cypher"
	"pgiv/internal/workload"
)

var (
	wl          = flag.String("workload", "social", "workload graph: social | train | paper")
	scale       = flag.Int("scale", 1, "workload scale factor")
	explain     = flag.Bool("explain", false, "print the GRA/NRA/FRA pipeline")
	incremental = flag.Bool("incremental", false, "register as a view and maintain under churn")
	churn       = flag.Int("churn", 0, "updates to apply after registration (incremental mode)")
	limit       = flag.Int("limit", 20, "maximum rows to print")
	repl        = flag.Bool("repl", false, "interactive statement loop on stdin")
)

func main() {
	flag.Parse()
	if *repl {
		if flag.NArg() != 0 {
			fmt.Fprintln(os.Stderr, "usage: pgivquery -repl [flags]")
			os.Exit(2)
		}
	} else if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: pgivquery [flags] <query | write statement>")
		flag.Usage()
		os.Exit(2)
	}
	query := flag.Arg(0)

	var g *pgiv.Graph
	var churnFn func(int)
	switch *wl {
	case "social":
		soc := workload.GenerateSocial(workload.DefaultSocialConfig(*scale))
		g, churnFn = soc.G, soc.Churn
	case "train":
		tr := workload.GenerateTrain(workload.DefaultTrainConfig(*scale))
		g, churnFn = tr.G, tr.InjectRepairMix
	case "paper":
		g = paperGraph()
		churnFn = func(int) {}
	default:
		log.Fatalf("unknown workload %q", *wl)
	}
	fmt.Printf("graph: %d vertices, %d edges\n", g.NumVertices(), g.NumEdges())

	if *repl {
		runREPL(g)
		return
	}

	// A write statement executes through the same path as the server:
	// one parsed statement, one transaction, one coalesced commit.
	if st, err := cypher.ParseStatement(query); err == nil && st.IsWrite() {
		stats, err := pgiv.Exec(g, query)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("wrote: %s\n", stats)
		fmt.Printf("graph: %d vertices, %d edges\n", g.NumVertices(), g.NumEdges())
		return
	}

	if !*incremental {
		res, err := pgiv.Snapshot(g, query)
		if err != nil {
			log.Fatal(err)
		}
		if *explain {
			// Register on a throwaway engine only to print the pipeline.
			eng := pgiv.NewEngine(g)
			if v, err := eng.RegisterView("q", query); err == nil {
				fmt.Println(v.Explain())
			} else if errors.Is(err, pgiv.ErrNotMaintainable) {
				fmt.Printf("(not incrementally maintainable: %v)\n", err)
			}
			eng.Close()
		}
		fmt.Printf("schema: %s\n", res.Schema)
		printRows(res.Sorted())
		return
	}

	engine := pgiv.NewEngine(g)
	view, err := engine.RegisterView("q", query)
	if err != nil {
		log.Fatal(err)
	}
	if *explain {
		fmt.Println(view.Explain())
	}
	deltas := 0
	view.OnChange(func(ds []pgiv.Delta) { deltas += len(ds) })
	if *churn > 0 {
		churnFn(*churn)
		fmt.Printf("applied %d updates; observed %d view deltas\n", *churn, deltas)
	}
	fmt.Printf("schema: %s\n", view.Schema())
	printRows(view.Rows())
	fmt.Printf("memoized rows across the network: %d\n", view.MemoryEntries())
}

// runREPL reads statements line by line. Write statements execute
// through pgiv.Exec — the same executor pgivd uses — and every
// registered view prints its per-commit delta batch as the commit
// propagates. Read queries snapshot-evaluate. "view <name> <query>"
// registers an incrementally maintained view, "drop <name>" drops it.
func runREPL(g *pgiv.Graph) {
	engine := pgiv.NewEngine(g)
	defer engine.Close()
	hook := func(v *pgiv.View) {
		v.OnChange(func(ds []pgiv.Delta) {
			fmt.Printf("  [%s]", v.Name())
			for _, d := range ds {
				fmt.Printf(" %+d%s", d.Mult, renderRow(d.Row))
			}
			fmt.Println()
		})
	}

	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	fmt.Println("pgiv repl — write statements, read queries, 'view <name> <query>', 'drop <name>', 'quit'")
	for fmt.Print("> "); sc.Scan(); fmt.Print("> ") {
		line := strings.TrimSpace(sc.Text())
		switch {
		case line == "" || strings.HasPrefix(line, "//"):
		case line == "quit" || line == "exit":
			return
		case strings.HasPrefix(line, "view "):
			rest := strings.TrimSpace(line[len("view "):])
			name, q, ok := strings.Cut(rest, " ")
			if !ok {
				fmt.Println("usage: view <name> <query>")
				continue
			}
			v, err := engine.RegisterView(name, q)
			if err != nil {
				fmt.Println("error:", err)
				continue
			}
			hook(v)
			fmt.Printf("view %s%v: %d row(s)\n", name, v.Schema(), len(v.Rows()))
		case strings.HasPrefix(line, "drop "):
			if err := engine.DropView(strings.TrimSpace(line[len("drop "):])); err != nil {
				fmt.Println("error:", err)
			}
		default:
			st, err := cypher.ParseStatement(line)
			if err != nil {
				fmt.Println("error:", err)
				continue
			}
			if st.IsWrite() {
				stats, err := pgiv.Exec(g, line)
				if err != nil {
					fmt.Println("error:", err)
					continue
				}
				fmt.Printf("wrote: %s\n", stats)
				continue
			}
			res, err := pgiv.Snapshot(g, line)
			if err != nil {
				fmt.Println("error:", err)
				continue
			}
			printRows(res.Sorted())
		}
	}
}

func renderRow(r pgiv.Row) string {
	s := "("
	for j, v := range r {
		if j > 0 {
			s += ", "
		}
		s += v.String()
	}
	return s + ")"
}

func paperGraph() *pgiv.Graph {
	g := pgiv.NewGraph()
	post := g.AddVertex([]string{"Post"}, pgiv.Props{"lang": pgiv.Str("en")})
	c2 := g.AddVertex([]string{"Comm"}, pgiv.Props{"lang": pgiv.Str("en")})
	c3 := g.AddVertex([]string{"Comm"}, pgiv.Props{"lang": pgiv.Str("en")})
	if _, err := g.AddEdge(post, c2, "REPLY", nil); err != nil {
		log.Fatal(err)
	}
	if _, err := g.AddEdge(c2, c3, "REPLY", nil); err != nil {
		log.Fatal(err)
	}
	return g
}

func printRows(rows []pgiv.Row) {
	fmt.Printf("%d row(s)\n", len(rows))
	for i, r := range rows {
		if i >= *limit {
			fmt.Printf("... %d more\n", len(rows)-*limit)
			return
		}
		fmt.Println(renderRow(r))
	}
}
