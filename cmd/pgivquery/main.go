// Command pgivquery runs an openCypher query against a generated workload
// graph, either as a one-shot snapshot evaluation or as an incrementally
// maintained view (printing the compilation pipeline of the paper with
// -explain).
//
// Examples:
//
//	pgivquery -workload social "MATCH (p:Post)-[:REPLY]->(c) RETURN p, c"
//	pgivquery -workload train -explain "MATCH (s:Segment) WHERE s.length <= 0 RETURN s"
//	pgivquery -workload social -incremental -churn 100 "MATCH (p:Post) RETURN count(*)"
package main

import (
	"errors"
	"flag"
	"fmt"
	"log"
	"os"

	"pgiv"
	"pgiv/internal/workload"
)

var (
	wl          = flag.String("workload", "social", "workload graph: social | train | paper")
	scale       = flag.Int("scale", 1, "workload scale factor")
	explain     = flag.Bool("explain", false, "print the GRA/NRA/FRA pipeline")
	incremental = flag.Bool("incremental", false, "register as a view and maintain under churn")
	churn       = flag.Int("churn", 0, "updates to apply after registration (incremental mode)")
	limit       = flag.Int("limit", 20, "maximum rows to print")
)

func main() {
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: pgivquery [flags] <query>")
		flag.Usage()
		os.Exit(2)
	}
	query := flag.Arg(0)

	var g *pgiv.Graph
	var churnFn func(int)
	switch *wl {
	case "social":
		soc := workload.GenerateSocial(workload.DefaultSocialConfig(*scale))
		g, churnFn = soc.G, soc.Churn
	case "train":
		tr := workload.GenerateTrain(workload.DefaultTrainConfig(*scale))
		g, churnFn = tr.G, tr.InjectRepairMix
	case "paper":
		g = paperGraph()
		churnFn = func(int) {}
	default:
		log.Fatalf("unknown workload %q", *wl)
	}
	fmt.Printf("graph: %d vertices, %d edges\n", g.NumVertices(), g.NumEdges())

	if !*incremental {
		res, err := pgiv.Snapshot(g, query)
		if err != nil {
			log.Fatal(err)
		}
		if *explain {
			// Register on a throwaway engine only to print the pipeline.
			eng := pgiv.NewEngine(g)
			if v, err := eng.RegisterView("q", query); err == nil {
				fmt.Println(v.Explain())
			} else if errors.Is(err, pgiv.ErrNotMaintainable) {
				fmt.Printf("(not incrementally maintainable: %v)\n", err)
			}
			eng.Close()
		}
		fmt.Printf("schema: %s\n", res.Schema)
		printRows(res.Sorted())
		return
	}

	engine := pgiv.NewEngine(g)
	view, err := engine.RegisterView("q", query)
	if err != nil {
		log.Fatal(err)
	}
	if *explain {
		fmt.Println(view.Explain())
	}
	deltas := 0
	view.OnChange(func(ds []pgiv.Delta) { deltas += len(ds) })
	if *churn > 0 {
		churnFn(*churn)
		fmt.Printf("applied %d updates; observed %d view deltas\n", *churn, deltas)
	}
	fmt.Printf("schema: %s\n", view.Schema())
	printRows(view.Rows())
	fmt.Printf("memoized rows across the network: %d\n", view.MemoryEntries())
}

func paperGraph() *pgiv.Graph {
	g := pgiv.NewGraph()
	post := g.AddVertex([]string{"Post"}, pgiv.Props{"lang": pgiv.Str("en")})
	c2 := g.AddVertex([]string{"Comm"}, pgiv.Props{"lang": pgiv.Str("en")})
	c3 := g.AddVertex([]string{"Comm"}, pgiv.Props{"lang": pgiv.Str("en")})
	if _, err := g.AddEdge(post, c2, "REPLY", nil); err != nil {
		log.Fatal(err)
	}
	if _, err := g.AddEdge(c2, c3, "REPLY", nil); err != nil {
		log.Fatal(err)
	}
	return g
}

func printRows(rows []pgiv.Row) {
	fmt.Printf("%d row(s)\n", len(rows))
	for i, r := range rows {
		if i >= *limit {
			fmt.Printf("... %d more\n", len(rows)-*limit)
			return
		}
		s := "("
		for j, v := range r {
			if j > 0 {
				s += ", "
			}
			s += v.String()
		}
		fmt.Println(s + ")")
	}
}
