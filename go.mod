module pgiv

go 1.24
