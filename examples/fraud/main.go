// Command fraud demonstrates low-latency financial fraud detection — one
// of the paper's motivating use cases for incremental property graph
// views. Accounts and transfers stream into the graph; three standing
// views flag suspicious structures the moment they appear:
//
//   - cycles: money moving in a ring of transfers back to its origin,
//   - fan-in: accounts receiving transfers from many distinct senders,
//   - mule proximity: accounts within a short transfer chain of an
//     account already flagged by compliance.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"pgiv"
)

const accounts = 120

func main() {
	g := pgiv.NewGraph()
	rng := rand.New(rand.NewSource(7))

	// Load the account book in one transaction, flags included.
	var ids []pgiv.ID
	if err := g.Batch(func(tx *pgiv.Tx) error {
		for i := 0; i < accounts; i++ {
			ids = append(ids, tx.AddVertex([]string{"Account"}, pgiv.Props{
				"iban": pgiv.Str(fmt.Sprintf("DE%010d", i)),
			}))
		}
		// Compliance has already flagged two accounts.
		for _, i := range []int{3, 77} {
			if err := tx.AddVertexLabel(ids[i], "Flagged"); err != nil {
				return err
			}
		}
		return nil
	}); err != nil {
		log.Fatal(err)
	}

	engine := pgiv.NewEngine(g)

	cycles, err := engine.RegisterView("cycles",
		"MATCH t = (a:Account)-[:TRANSFER*2..4]->(a) RETURN a, t")
	if err != nil {
		log.Fatal(err)
	}
	fanin, err := engine.RegisterView("fan-in",
		"MATCH (src:Account)-[:TRANSFER]->(sink:Account) RETURN sink, count(DISTINCT src) AS senders")
	if err != nil {
		log.Fatal(err)
	}
	nearMule, err := engine.RegisterView("mule-proximity",
		"MATCH (f:Account:Flagged)-[:TRANSFER*1..2]->(a:Account) WHERE NOT (a)-[:TRANSFER]->(:Account:Flagged) RETURN DISTINCT a")
	if err != nil {
		log.Fatal(err)
	}

	alerts := 0
	cycles.OnChange(func(deltas []pgiv.Delta) {
		for _, d := range deltas {
			if d.Mult > 0 {
				alerts++
			}
		}
	})

	// Stream random transfers in settlement batches of 20: the views
	// update once per committed batch, firing alerts on the net effect.
	const settlement = 20
	for i := 0; i < 600; i += settlement {
		if err := g.Batch(func(tx *pgiv.Tx) error {
			for j := 0; j < settlement; j++ {
				src := ids[rng.Intn(len(ids))]
				dst := ids[rng.Intn(len(ids))]
				if src == dst {
					continue
				}
				if _, err := tx.AddEdge(src, dst, "TRANSFER", pgiv.Props{
					"amount": pgiv.Int(int64(rng.Intn(9000) + 100)),
				}); err != nil {
					return err
				}
			}
			return nil
		}); err != nil {
			log.Fatal(err)
		}
	}

	fmt.Printf("after 600 streamed transfers over %d accounts:\n", accounts)
	fmt.Printf("  transfer cycles detected (live alerts): %d\n", alerts)
	fmt.Printf("  cycle rows currently in view:           %d\n", cycles.DistinctCount())

	// Top fan-in sinks: an ordered top-k view, maintained incrementally
	// by the order-statistic Rete node — Rows() is the live leaderboard.
	topFanin, err := engine.RegisterView("fan-in-top3",
		"MATCH (src:Account)-[:TRANSFER]->(sink:Account) RETURN sink, count(DISTINCT src) AS senders ORDER BY senders DESC LIMIT 3")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("  top fan-in sinks (incremental top-k view):")
	for _, r := range topFanin.Rows() {
		fmt.Printf("    account %s with %s distinct senders\n", r[0], r[1])
	}
	fmt.Printf("  fan-in view keeps %d sinks incrementally\n", fanin.DistinctCount())
	fmt.Printf("  accounts within 2 hops of a flagged account: %d\n", nearMule.DistinctCount())

	// A new flag instantly reshapes the proximity view — label change as
	// a fine-grained update.
	before := nearMule.DistinctCount()
	if err := g.AddVertexLabel(ids[50], "Flagged"); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  after flagging one more account: %d -> %d\n", before, nearMule.DistinctCount())
}
