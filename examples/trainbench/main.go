// Command trainbench runs the Train Benchmark scenario — the paper's
// motivating continuous model validation use case: the six
// well-formedness queries are registered as incremental views over a
// generated railway model, then an inject/repair update stream runs and
// the violation counts are revalidated after every transformation,
// comparing incremental maintenance latency against full recomputation.
package main

import (
	"flag"
	"fmt"
	"log"
	"sort"
	"time"

	"pgiv"
	"pgiv/internal/workload"
)

func main() {
	scale := flag.Int("scale", 1, "model scale factor")
	ops := flag.Int("ops", 60, "number of inject/repair operations")
	flag.Parse()

	fmt.Printf("generating railway model (scale %d)...\n", *scale)
	train := workload.GenerateTrain(workload.DefaultTrainConfig(*scale))
	g := train.G
	fmt.Printf("model: %d vertices, %d edges\n\n", g.NumVertices(), g.NumEdges())

	engine := pgiv.NewEngine(g)
	names := make([]string, 0, len(workload.TrainQueries))
	for name := range workload.TrainQueries {
		names = append(names, name)
	}
	sort.Strings(names)

	views := make(map[string]*pgiv.View)
	for _, name := range names {
		start := time.Now()
		v, err := engine.RegisterView(name, workload.TrainQueries[name])
		if err != nil {
			log.Fatalf("register %s: %v", name, err)
		}
		views[name] = v
		fmt.Printf("%-18s %5d violations  (registered in %v)\n",
			name, v.DistinctCount(), time.Since(start).Round(time.Microsecond))
	}

	fmt.Printf("\nrunning %d inject/repair transformations...\n", *ops)
	start := time.Now()
	train.InjectRepairMix(*ops)
	incTotal := time.Since(start)
	fmt.Printf("incremental revalidation: %v total, %v per transformation\n",
		incTotal.Round(time.Microsecond), (incTotal / time.Duration(*ops)).Round(time.Microsecond))

	fmt.Println("\nviolations after the update stream:")
	for _, name := range names {
		fmt.Printf("%-18s %5d violations\n", name, views[name].DistinctCount())
	}

	// Baseline: re-evaluate all six queries from scratch once.
	start = time.Now()
	for _, name := range names {
		if _, err := pgiv.Snapshot(g, workload.TrainQueries[name]); err != nil {
			log.Fatalf("snapshot %s: %v", name, err)
		}
	}
	snap := time.Since(start)
	fmt.Printf("\nfull recomputation of all six queries: %v\n", snap.Round(time.Microsecond))
	fmt.Printf("speedup per transformation: %.1fx\n",
		float64(snap)/float64(incTotal/time.Duration(*ops)))
}
