// Command social maintains a battery of social-network views (reply
// threads, like counts, friend-of-friend recommendations) over a
// generated LDBC-SNB-style graph while a fine-grained update stream runs,
// and reports maintenance latency against full recomputation.
package main

import (
	"flag"
	"fmt"
	"log"
	"sort"
	"time"

	"pgiv"
	"pgiv/internal/workload"
)

func main() {
	scale := flag.Int("scale", 1, "social network scale factor")
	churn := flag.Int("churn", 200, "number of update operations")
	flag.Parse()

	fmt.Printf("generating social network (scale %d)...\n", *scale)
	soc := workload.GenerateSocial(workload.DefaultSocialConfig(*scale))
	g := soc.G
	fmt.Printf("graph: %d vertices, %d edges\n\n", g.NumVertices(), g.NumEdges())

	engine := pgiv.NewEngine(g)
	names := make([]string, 0, len(workload.SocialQueries))
	for name := range workload.SocialQueries {
		names = append(names, name)
	}
	sort.Strings(names)

	changes := make(map[string]int)
	for _, name := range names {
		name := name
		start := time.Now()
		v, err := engine.RegisterView(name, workload.SocialQueries[name])
		if err != nil {
			log.Fatalf("register %s: %v", name, err)
		}
		v.OnChange(func(deltas []pgiv.Delta) { changes[name] += len(deltas) })
		fmt.Printf("%-12s %6d rows, %7d memoized entries (registered in %v)\n",
			name, v.DistinctCount(), v.MemoryEntries(), time.Since(start).Round(time.Microsecond))
	}

	fmt.Printf("\napplying %d fine-grained updates, one transaction each...\n", *churn)
	start := time.Now()
	soc.Churn(*churn)
	inc := time.Since(start)
	fmt.Printf("per-op maintenance: %v total, %v per update\n",
		inc.Round(time.Microsecond), (inc / time.Duration(*churn)).Round(time.Microsecond))

	fmt.Printf("\napplying %d more updates as one batched transaction...\n", *churn)
	start = time.Now()
	soc.ChurnBatch(*churn)
	batched := time.Since(start)
	fmt.Printf("batched maintenance: %v total, %v per update (%.1fx vs per-op)\n",
		batched.Round(time.Microsecond),
		(batched / time.Duration(*churn)).Round(time.Microsecond),
		float64(inc)/float64(batched))

	fmt.Println("\ndelta traffic per view:")
	for _, name := range names {
		v, _ := engine.View(name)
		fmt.Printf("%-12s %6d rows, %6d deltas observed\n", name, v.DistinctCount(), changes[name])
	}

	start = time.Now()
	for _, name := range names {
		if _, err := pgiv.Snapshot(g, workload.SocialQueries[name]); err != nil {
			log.Fatalf("snapshot %s: %v", name, err)
		}
	}
	snap := time.Since(start)
	fmt.Printf("\nfull recomputation of all views: %v\n", snap.Round(time.Microsecond))
	fmt.Printf("speedup per update: %.1fx\n", float64(snap)/float64(inc/time.Duration(*churn)))
}
