// Command quickstart reproduces the paper's running example (Section 2):
// a view listing posts with the (transitive) reply threads written in the
// same language, maintained incrementally under updates.
package main

import (
	"fmt"
	"log"

	"pgiv"
)

func main() {
	g := pgiv.NewGraph()
	engine := pgiv.NewEngine(g)
	view, err := engine.RegisterView("threads",
		"MATCH t = (p:Post)-[:REPLY*]->(c:Comm) WHERE p.lang = c.lang RETURN p, t")
	if err != nil {
		log.Fatal(err)
	}

	// The example graph: Post 1 with comments 2 and 3 replying in a
	// chain, all in English — loaded in one transaction, so the view is
	// populated by a single coalesced change set at commit.
	var post, c2, c3, e23 pgiv.ID
	if err := g.Batch(func(tx *pgiv.Tx) error {
		post = tx.AddVertex([]string{"Post"}, pgiv.Props{"lang": pgiv.Str("en")})
		c2 = tx.AddVertex([]string{"Comm"}, pgiv.Props{"lang": pgiv.Str("en")})
		c3 = tx.AddVertex([]string{"Comm"}, pgiv.Props{"lang": pgiv.Str("en")})
		if _, err := tx.AddEdge(post, c2, "REPLY", nil); err != nil {
			return err
		}
		var err error
		e23, err = tx.AddEdge(c2, c3, "REPLY", nil)
		return err
	}); err != nil {
		log.Fatal(err)
	}

	// Subscribe to the delta stream.
	view.OnChange(func(deltas []pgiv.Delta) {
		for _, d := range deltas {
			sign := "+"
			if d.Mult < 0 {
				sign = "-"
			}
			fmt.Printf("  delta %s%s\n", sign, rowString(d.Row))
		}
	})

	fmt.Println("== the paper's result table (p, t) ==")
	printRows(view.Rows())

	fmt.Println("\n== compilation pipeline (GRA → NRA → FRA) ==")
	fmt.Println(view.Explain())

	fmt.Println("== update: comment 3 switches to German ==")
	if err := g.SetVertexProperty(c3, "lang", pgiv.Str("de")); err != nil {
		log.Fatal(err)
	}
	printRows(view.Rows())

	fmt.Println("\n== update: a new English comment replies to comment 2 (one tx) ==")
	if err := g.Batch(func(tx *pgiv.Tx) error {
		c4 := tx.AddVertex([]string{"Comm"}, pgiv.Props{"lang": pgiv.Str("en")})
		_, err := tx.AddEdge(c2, c4, "REPLY", nil)
		return err
	}); err != nil {
		log.Fatal(err)
	}
	printRows(view.Rows())

	fmt.Println("\n== update: the edge 2->3 is deleted (atomic path removal) ==")
	if err := g.RemoveEdge(e23); err != nil {
		log.Fatal(err)
	}
	printRows(view.Rows())

	// Top-k views are maintained incrementally (PR 5): the window keeps
	// itself up to date as the graph changes — only rows entering or
	// leaving the top two are ever propagated.
	fmt.Println("\n== top-k view: first two comments by language ==")
	topk, err := engine.RegisterView("topk",
		"MATCH (c:Comm) RETURN c, c.lang ORDER BY c.lang LIMIT 2")
	if err != nil {
		log.Fatal(err)
	}
	printRows(topk.Rows())

	// Writing through Cypher (PR 6): a write statement is one
	// transaction — the MATCH prefix binds against the pre-statement
	// snapshot, the updates apply through the same ChangeSet path as
	// g.Batch, and the view receives exactly one coalesced OnChange
	// batch. MERGE matches-or-creates, so re-running it is a no-op.
	fmt.Println("\n== Cypher writes: a German thread via CREATE + MERGE ==")
	stats, err := pgiv.Exec(g,
		"MATCH (c:Comm {lang: 'de'}) CREATE (p:Post {lang: 'de'})-[:REPLY]->(c)")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("  wrote:", stats)
	stats, err = pgiv.ExecParams(g,
		"MERGE (t:Tag {name: $tag})", pgiv.Props{"tag": pgiv.Str("ivm")})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("  merge #1:", stats)
	stats, err = pgiv.ExecParams(g,
		"MERGE (t:Tag {name: $tag})", pgiv.Props{"tag": pgiv.Str("ivm")})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("  merge #2 (idempotent):", stats)
	printRows(view.Rows())

	// The same writes work over the wire: start `go run ./cmd/pgivd`,
	// dial it with pgiv/client, and Exec/Subscribe stream each commit's
	// coalesced delta batch to every subscriber (see README "pgivd").

	// The maintainable-fragment boundary: expressions depending on
	// non-materialised graph state are rejected; the snapshot engine
	// still evaluates them.
	fmt.Println("\n== fragment boundary ==")
	_, err = engine.RegisterView("labels", "MATCH (c:Comm) RETURN labels(c)")
	fmt.Println("register labels() view:", err)
	res, err := pgiv.Snapshot(g, "MATCH (c:Comm) RETURN labels(c)")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("snapshot engine evaluates it instead:", len(res.Rows), "rows")
}

func rowString(r pgiv.Row) string {
	s := "("
	for i, v := range r {
		if i > 0 {
			s += ", "
		}
		s += v.String()
	}
	return s + ")"
}

func printRows(rows []pgiv.Row) {
	if len(rows) == 0 {
		fmt.Println("  (empty)")
		return
	}
	for _, r := range rows {
		fmt.Println(" ", rowString(r))
	}
}
