// Package pgiv (Property Graph Incremental Views) is the public facade of
// an incremental view maintenance engine for openCypher property graph
// queries, reproducing:
//
//	Gábor Szárnyas. "Incremental View Maintenance for Property Graph
//	Queries." SIGMOD 2018 (SRC), arXiv:1712.04108.
//
// A query is compiled through the paper's pipeline — graph relational
// algebra (GRA), nested relational algebra (NRA, where expand operators
// become joins with get-edges and transitive joins), and flat relational
// algebra (FRA, where the minimal schema of each operator is inferred and
// property accesses are pushed into base operators) — and materialised as
// a Rete-style network that is maintained under fine-grained graph
// updates. Paths are first-class but atomic values (the paper's ORD
// compromise). Going beyond the paper's ORD result, ordering and top-k
// (ORDER BY/SKIP/LIMIT over returned columns, with constant bounds) ARE
// maintainable: an order-statistic Rete node keeps the visible window
// [skip, skip+limit) up to date and views deliver it in rank order.
//
// Mutations are transactional: load and update the graph through
// g.Batch (or g.Begin/tx.Commit) and the engine propagates one coalesced
// change set per commit — a 10k-mutation load costs one propagation pass
// instead of 10k. The classic single-shot mutators (AddVertex, AddEdge,
// ...) remain as auto-committed one-operation transactions. Each view's
// OnChange fires at most once per commit with the net delta batch.
//
// Quickstart:
//
//	g := pgiv.NewGraph()
//	engine := pgiv.NewEngine(g)
//	view, err := engine.RegisterView("threads",
//	    "MATCH t = (p:Post)-[:REPLY*]->(c:Comm) WHERE p.lang = c.lang RETURN p, t")
//
//	_ = g.Batch(func(tx *pgiv.Tx) error {
//	    post := tx.AddVertex([]string{"Post"}, pgiv.Props{"lang": pgiv.Str("en")})
//	    comm := tx.AddVertex([]string{"Comm"}, pgiv.Props{"lang": pgiv.Str("en")})
//	    _, err := tx.AddEdge(post, comm, "REPLY", nil)
//	    return err
//	})
//	// view.Rows() now and after any commit reflects the current graph.
package pgiv

import (
	"pgiv/internal/graph"
	"pgiv/internal/ivm"
	"pgiv/internal/rete"
	"pgiv/internal/schema"
	"pgiv/internal/snapshot"
	"pgiv/internal/value"
	"pgiv/internal/write"
)

// Graph is an in-memory property graph store with change notification.
type Graph = graph.Graph

// Vertex is a labelled vertex with properties.
type Vertex = graph.Vertex

// Edge is a typed edge with properties.
type Edge = graph.Edge

// ID identifies vertices and edges.
type ID = graph.ID

// Value is a query-language value (null, bool, int, float, string,
// vertex/edge reference, list, map, or path).
type Value = value.Value

// Row is a result tuple.
type Row = value.Row

// Path is an alternating vertex/edge sequence, treated as an atomic value
// by the incremental engine.
type Path = value.Path

// Props is a convenience alias for property maps.
type Props = map[string]value.Value

// Tx is an explicit transaction: a batch of mutations committed — and
// propagated to views — as one unit. Obtain one with Graph.Begin or let
// Graph.Batch manage the commit/rollback lifecycle.
type Tx = graph.Tx

// ChangeSet is the coalesced net effect of one committed transaction,
// delivered to graph listeners. See the graph package for the coalescing
// rules (add+remove in one transaction nets out; repeated property
// writes keep first-old/last-new).
type ChangeSet = graph.ChangeSet

// Mutator is the write interface shared by *Graph (auto-committed
// one-op transactions) and *Tx (explicit transactions); loaders should
// accept it so callers choose the transaction granularity.
type Mutator = graph.Mutator

// Reader is the read-only graph interface shared by the live *Graph and
// pinned epoch snapshots (*PinnedSnapshot): everything query evaluation
// needs. Snapshot/SnapshotParams accept either.
type Reader = graph.Reader

// PinnedSnapshot is an immutable view of the graph at one committed
// epoch, obtained from Graph.Snapshot(). Reads on it are lock-free, run
// concurrently with commits, and never observe later changes; call
// Release when done so the epoch's memory can be reclaimed.
type PinnedSnapshot = graph.Snapshot

// Engine maintains materialised views over a graph.
type Engine = ivm.Engine

// View is a registered, incrementally maintained view.
type View = ivm.View

// EngineOptions configure NewEngineWithOptions.
type EngineOptions = ivm.Options

// Delta is one view change: a row appearing (Mult > 0) or disappearing
// (Mult < 0).
type Delta = rete.Delta

// Schema is a list of output attribute names.
type Schema = schema.Schema

// Result is a snapshot (non-incremental) query result.
type Result = snapshot.Result

// ErrNotMaintainable is wrapped by RegisterView errors for queries
// outside the incrementally maintainable fragment (e.g. ORDER BY keys
// the projection drops, non-constant SKIP/LIMIT bounds, or expressions
// depending on non-materialised graph state). Such queries still
// evaluate via Snapshot.
var ErrNotMaintainable = ivm.ErrNotMaintainable

// NewGraph creates an empty property graph.
func NewGraph() *Graph { return graph.New() }

// NewEngine creates a view-maintenance engine subscribed to g.
func NewEngine(g *Graph) *Engine { return ivm.NewEngine(g) }

// NewEngineWithOptions creates an engine with explicit options (e.g.
// disabling Rete input-node sharing).
func NewEngineWithOptions(g *Graph, opts EngineOptions) *Engine {
	return ivm.NewEngine(g, opts)
}

// Snapshot evaluates a query against a graph state from scratch (the
// full-recomputation baseline, and the differential oracle for
// incremental views — including the exact window order of
// ORDER BY/SKIP/LIMIT). g may be the live *Graph or a *PinnedSnapshot:
// in the latter case the evaluation runs entirely against the pinned
// epoch, concurrent with commits.
func Snapshot(g Reader, query string) (*Result, error) {
	return snapshot.Query(g, query, nil)
}

// SnapshotParams is Snapshot with query parameters.
func SnapshotParams(g Reader, query string, params Props) (*Result, error) {
	return snapshot.Query(g, query, params)
}

// Stats are the engine's cumulative ad-hoc query-serving counters
// (rewrite hits, residual hits, misses); see Engine.Stats.
type Stats = ivm.Stats

// Query answers an ad-hoc read through the engine's rewrite planner:
// when a registered view's memoized rows cover the query — exactly, or
// up to a residual filter / projection / top slice — the answer is
// computed from the memo at a pinned matching epoch in O(residual)
// instead of a full snapshot evaluation. Queries no memo covers fall
// back to snapshot evaluation transparently; results are always
// byte-identical to Snapshot at the same epoch.
func Query(e *Engine, query string) (*Result, error) {
	res, _, err := e.Query(query)
	return res, err
}

// QueryParams is Query with parameters.
func QueryParams(e *Engine, query string, params Props) (*Result, error) {
	res, _, err := e.QueryParams(query, params)
	return res, err
}

// ExplainRewrite reports how the engine would answer an ad-hoc query
// right now: the chosen memoized view and the residual plan over its
// rows, or a miss.
func ExplainRewrite(e *Engine, query string) (string, error) {
	return e.ExplainRewrite(query, nil)
}

// WriteStats reports the effect of a Cypher write statement.
type WriteStats = write.Stats

// Exec executes a Cypher write statement — CREATE, MERGE, SET, REMOVE,
// DELETE/DETACH DELETE, optionally prefixed by MATCH/OPTIONAL MATCH/
// UNWIND/WITH — against g as one transaction: the reading prefix is
// evaluated once against the pre-statement snapshot, all updates apply
// through the same transactional path as g.Batch, and every registered
// view receives exactly one coalesced OnChange batch for the commit. On
// error nothing is applied.
func Exec(g *Graph, stmt string) (WriteStats, error) {
	return write.Exec(g, stmt, nil)
}

// ExecParams is Exec with statement parameters.
func ExecParams(g *Graph, stmt string, params Props) (WriteStats, error) {
	return write.Exec(g, stmt, params)
}

// Value constructors.

// Null is the null value.
var Null = value.Null

// Int builds an integer value.
func Int(i int64) Value { return value.NewInt(i) }

// Float builds a float value.
func Float(f float64) Value { return value.NewFloat(f) }

// Str builds a string value.
func Str(s string) Value { return value.NewString(s) }

// Bool builds a boolean value.
func Bool(b bool) Value { return value.NewBool(b) }

// List builds a list value.
func List(vs ...Value) Value { return value.NewList(vs) }
